#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/config/configuration.h"
#include "src/runtime/measurement_store.h"

namespace hypertune {
namespace {

Configuration C(double a, double b = 0.0) {
  return Configuration(std::vector<double>{a, b});
}

TEST(ShardedStoreTest, ContainsSeesStoredAndPending) {
  MeasurementStore store(3);
  EXPECT_FALSE(store.Contains(C(1)));
  store.Add(2, C(1), 0.5);
  EXPECT_TRUE(store.Contains(C(1)));

  store.AddPending(C(2), 1);
  EXPECT_TRUE(store.Contains(C(2)));
  store.RemovePending(C(2), 1);
  EXPECT_FALSE(store.Contains(C(2)));
}

TEST(ShardedStoreTest, PendingChurnLeavesConsistentState) {
  // Heavy add/remove churn exercises tombstoning and shard compaction;
  // afterwards the store must report exactly the surviving entries.
  MeasurementStore store(2);
  for (int round = 0; round < 500; ++round) {
    store.AddPending(C(round % 7), 1);
    store.AddPending(C(round % 7), 2);
    store.RemovePending(C(round % 7), 1);
    if (round % 2 == 0) store.RemovePending(C(round % 7), 2);
  }
  // 500 level-2 adds, 250 removed.
  EXPECT_EQ(store.NumPending(), 250u);
  EXPECT_EQ(store.PendingConfigs().size(), 250u);
  EXPECT_EQ(store.PendingConfigs(1).size(), 0u);
  EXPECT_EQ(store.PendingConfigs(2).size(), 250u);
}

TEST(ShardedStoreTest, PendingSnapshotOrderIsDeterministic) {
  // Two stores fed the same sequence must snapshot in the same order
  // (shard-major, insertion order within a shard).
  MeasurementStore a(1);
  MeasurementStore b(1);
  for (int i = 0; i < 64; ++i) {
    a.AddPending(C(i, i % 3), 1);
    b.AddPending(C(i, i % 3), 1);
  }
  std::vector<Configuration> pa = a.PendingConfigs();
  std::vector<Configuration> pb = b.PendingConfigs();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_TRUE(pa[i] == pb[i]);
}

TEST(ShardedStoreTest, ConcurrentPendingMutationUnderContention) {
  // Worker threads mark/unmark pending configs while readers snapshot and
  // probe membership — the access pattern of async schedulers feeding a
  // shared store. Run under TSan in CI; the per-shard locks must keep every
  // counter exact.
  MeasurementStore store(2);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)store.PendingConfigs();
      (void)store.PendingConfigs(1);
      (void)store.NumPending();
      (void)store.Contains(C(0, 0));
      (void)store.version();
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&store, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        Configuration config = C(t, i % 17);
        store.AddPending(config, 1 + (i % 2));
        store.RemovePending(config, 1 + (i % 2));
      }
      // Leave exactly one pending entry per thread.
      store.AddPending(C(t, -1.0), 1);
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(store.NumPending(), static_cast<size_t>(kThreads));
  EXPECT_EQ(store.PendingConfigs().size(), static_cast<size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(store.Contains(C(t, -1.0)));
  }
}

TEST(ShardedStoreTest, ConcurrentAddAndContains) {
  // Measurement writers at distinct levels race membership probes; the
  // group index must never yield a false positive or torn read.
  MeasurementStore store(4);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kPerThread; ++i) {
        store.Add(1 + t, C(t, i), static_cast<double>(i));
        (void)store.Contains(C((t + 1) % kThreads, i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.TotalSize(),
            static_cast<size_t>(kThreads) * static_cast<size_t>(kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(store.group(1 + t).size(), static_cast<size_t>(kPerThread));
    EXPECT_TRUE(store.Contains(C(t, 0)));
  }
  // Re-adding an existing config replaces, never duplicates.
  store.Add(1, C(0, 0), -1.0);
  EXPECT_EQ(store.group(1).size(), static_cast<size_t>(kPerThread));
  EXPECT_DOUBLE_EQ(store.BestObjective(1), -1.0);
}

}  // namespace
}  // namespace hypertune
