#include "src/linalg/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/linalg/cholesky.h"

namespace hypertune {
namespace {

TEST(VectorTest, DotAndNorm) {
  Vector a = {1.0, 2.0, 3.0};
  Vector b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(Norm({3.0, 4.0}), 5.0);
}

TEST(MatrixTest, IdentityAndAccess) {
  Matrix id = Matrix::Identity(3);
  EXPECT_EQ(id.rows(), 3u);
  EXPECT_EQ(id.cols(), 3u);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
}

TEST(MatrixTest, MatVec) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  m(1, 1) = 5;
  m(1, 2) = 6;
  Vector y = m.MatVec({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(MatrixTest, TransposeMatVecMatchesTransposed) {
  Rng rng(1);
  Matrix m(3, 4);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) m(r, c) = rng.Gaussian();
  }
  Vector x = {1.0, -2.0, 0.5};
  Vector direct = m.TransposeMatVec(x);
  Vector via_transpose = m.Transposed().MatVec(x);
  ASSERT_EQ(direct.size(), via_transpose.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], via_transpose[i], 1e-12);
  }
}

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, AddDiagonal) {
  Matrix m = Matrix::Identity(2);
  m.AddDiagonal(0.5);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(m(1, 1), 1.5);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

/// Builds a random SPD matrix A = B B^T + n I.
Matrix RandomSpd(size_t n, uint64_t seed) {
  Rng rng(seed);
  Matrix b(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) b(r, c) = rng.Gaussian();
  }
  Matrix a = b.MatMul(b.Transposed());
  a.AddDiagonal(static_cast<double>(n) * 0.1);
  return a;
}

TEST(CholeskyTest, FactorizationReconstructs) {
  Matrix a = RandomSpd(5, 42);
  Cholesky chol;
  ASSERT_TRUE(chol.Factorize(a).ok());
  const Matrix& l = chol.lower();
  Matrix reconstructed = l.MatMul(l.Transposed());
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(reconstructed(r, c), a(r, c), 1e-9);
    }
  }
}

TEST(CholeskyTest, SolveMatchesDirectMultiply) {
  Matrix a = RandomSpd(6, 7);
  Cholesky chol;
  ASSERT_TRUE(chol.Factorize(a).ok());
  Vector x_true = {1.0, -2.0, 3.0, 0.5, -0.25, 2.0};
  Vector b = a.MatVec(x_true);
  Vector x = chol.Solve(b);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

TEST(CholeskyTest, LogDeterminantMatchesIdentityScaling) {
  Matrix a = Matrix::Identity(4);
  a.AddDiagonal(1.0);  // 2I -> det = 16
  Cholesky chol;
  ASSERT_TRUE(chol.Factorize(a).ok());
  EXPECT_NEAR(chol.LogDeterminant(), std::log(16.0), 1e-12);
}

TEST(CholeskyTest, RejectsNonSquare) {
  Cholesky chol;
  EXPECT_EQ(chol.Factorize(Matrix(2, 3)).code(),
            StatusCode::kInvalidArgument);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  Cholesky chol;
  EXPECT_EQ(chol.Factorize(a).code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(chol.ok());
}

TEST(CholeskyTest, JitterRescuesSemiDefinite) {
  // Rank-deficient PSD matrix: outer product of a single vector.
  Matrix a(3, 3);
  Vector v = {1.0, 2.0, 3.0};
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) a(r, c) = v[r] * v[c];
  }
  Cholesky chol;
  double jitter = 0.0;
  ASSERT_TRUE(CholeskyWithJitter(a, &chol, &jitter).ok());
  EXPECT_GT(jitter, 0.0);
  EXPECT_TRUE(chol.ok());
}

TEST(CholeskyTest, JitterZeroWhenAlreadyPd) {
  Matrix a = RandomSpd(3, 3);
  Cholesky chol;
  double jitter = 123.0;
  ASSERT_TRUE(CholeskyWithJitter(a, &chol, &jitter).ok());
  EXPECT_DOUBLE_EQ(jitter, 0.0);
}

}  // namespace
}  // namespace hypertune
