#include "src/linalg/matrix.h"

#include <array>
#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/linalg/cholesky.h"

namespace hypertune {
namespace {

TEST(VectorTest, DotAndNorm) {
  Vector a = {1.0, 2.0, 3.0};
  Vector b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(Norm({3.0, 4.0}), 5.0);
}

TEST(MatrixTest, IdentityAndAccess) {
  Matrix id = Matrix::Identity(3);
  EXPECT_EQ(id.rows(), 3u);
  EXPECT_EQ(id.cols(), 3u);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
}

TEST(MatrixTest, MatVec) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  m(1, 1) = 5;
  m(1, 2) = 6;
  Vector y = m.MatVec({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(MatrixTest, TransposeMatVecMatchesTransposed) {
  Rng rng(1);
  Matrix m(3, 4);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) m(r, c) = rng.Gaussian();
  }
  Vector x = {1.0, -2.0, 0.5};
  Vector direct = m.TransposeMatVec(x);
  Vector via_transpose = m.Transposed().MatVec(x);
  ASSERT_EQ(direct.size(), via_transpose.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], via_transpose[i], 1e-12);
  }
}

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, AddDiagonal) {
  Matrix m = Matrix::Identity(2);
  m.AddDiagonal(0.5);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(m(1, 1), 1.5);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

/// Builds a random SPD matrix A = B B^T + n I.
Matrix RandomSpd(size_t n, uint64_t seed) {
  Rng rng(seed);
  Matrix b(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) b(r, c) = rng.Gaussian();
  }
  Matrix a = b.MatMul(b.Transposed());
  a.AddDiagonal(static_cast<double>(n) * 0.1);
  return a;
}

TEST(CholeskyTest, FactorizationReconstructs) {
  Matrix a = RandomSpd(5, 42);
  Cholesky chol;
  ASSERT_TRUE(chol.Factorize(a).ok());
  const Matrix& l = chol.lower();
  Matrix reconstructed = l.MatMul(l.Transposed());
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(reconstructed(r, c), a(r, c), 1e-9);
    }
  }
}

TEST(CholeskyTest, SolveMatchesDirectMultiply) {
  Matrix a = RandomSpd(6, 7);
  Cholesky chol;
  ASSERT_TRUE(chol.Factorize(a).ok());
  Vector x_true = {1.0, -2.0, 3.0, 0.5, -0.25, 2.0};
  Vector b = a.MatVec(x_true);
  Vector x = chol.Solve(b);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

TEST(CholeskyTest, LogDeterminantMatchesIdentityScaling) {
  Matrix a = Matrix::Identity(4);
  a.AddDiagonal(1.0);  // 2I -> det = 16
  Cholesky chol;
  ASSERT_TRUE(chol.Factorize(a).ok());
  EXPECT_NEAR(chol.LogDeterminant(), std::log(16.0), 1e-12);
}

TEST(CholeskyTest, RejectsNonSquare) {
  Cholesky chol;
  EXPECT_EQ(chol.Factorize(Matrix(2, 3)).code(),
            StatusCode::kInvalidArgument);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  Cholesky chol;
  EXPECT_EQ(chol.Factorize(a).code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(chol.ok());
}

TEST(CholeskyTest, JitterRescuesSemiDefinite) {
  // Rank-deficient PSD matrix: outer product of a single vector.
  Matrix a(3, 3);
  Vector v = {1.0, 2.0, 3.0};
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) a(r, c) = v[r] * v[c];
  }
  Cholesky chol;
  double jitter = 0.0;
  ASSERT_TRUE(CholeskyWithJitter(a, &chol, &jitter).ok());
  EXPECT_GT(jitter, 0.0);
  EXPECT_TRUE(chol.ok());
}

TEST(CholeskyTest, JitterZeroWhenAlreadyPd) {
  Matrix a = RandomSpd(3, 3);
  Cholesky chol;
  double jitter = 123.0;
  ASSERT_TRUE(CholeskyWithJitter(a, &chol, &jitter).ok());
  EXPECT_DOUBLE_EQ(jitter, 0.0);
}

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m(r, c) = rng.Gaussian();
  }
  return m;
}

TEST(MatrixTest, GemmMatchesMatMul) {
  // Sizes straddling the 64/256 tile boundaries so partial blocks on every
  // loop dimension are exercised.
  for (auto [m, k, n] : {std::array<size_t, 3>{3, 5, 4},
                         std::array<size_t, 3>{65, 64, 70},
                         std::array<size_t, 3>{100, 130, 260}}) {
    Matrix a = RandomMatrix(m, k, 17 + m);
    Matrix b = RandomMatrix(k, n, 31 + n);
    Matrix naive = a.MatMul(b);
    Matrix blocked = Gemm(a, b);
    ASSERT_EQ(blocked.rows(), naive.rows());
    ASSERT_EQ(blocked.cols(), naive.cols());
    for (size_t r = 0; r < m; ++r) {
      for (size_t c = 0; c < n; ++c) {
        EXPECT_NEAR(blocked(r, c), naive(r, c), 1e-9)
            << "at (" << r << "," << c << ") of " << m << "x" << k << "x" << n;
      }
    }
  }
}

TEST(MatrixTest, SyrkMatchesMatMulTransposed) {
  for (size_t cols : {5u, 64u, 100u}) {
    Matrix a = RandomMatrix(20, cols, cols);
    Matrix naive = a.MatMul(a.Transposed());
    Matrix syrk = a.Syrk();
    ASSERT_EQ(syrk.rows(), 20u);
    ASSERT_EQ(syrk.cols(), 20u);
    for (size_t r = 0; r < 20; ++r) {
      for (size_t c = 0; c < 20; ++c) {
        EXPECT_NEAR(syrk(r, c), naive(r, c), 1e-9);
        EXPECT_DOUBLE_EQ(syrk(r, c), syrk(c, r));  // exact mirror
      }
    }
  }
}

TEST(CholeskyTest, SolveLowerMultiBitIdenticalToPerColumn) {
  // Width 70 crosses the 64-column tile boundary; per-column results must
  // match the single-RHS solve bit-for-bit (the GP batch-prediction path
  // relies on this for golden-history stability).
  Matrix a = RandomSpd(12, 99);
  Cholesky chol;
  ASSERT_TRUE(chol.Factorize(a).ok());
  Matrix b = RandomMatrix(12, 70, 5);
  Matrix multi = chol.SolveLowerMulti(b);
  for (size_t j = 0; j < b.cols(); ++j) {
    Vector col(b.rows());
    for (size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    Vector single = chol.SolveLower(col);
    for (size_t i = 0; i < b.rows(); ++i) {
      EXPECT_DOUBLE_EQ(multi(i, j), single[i])
          << "column " << j << " row " << i;
    }
  }
}

TEST(CholeskyTest, SolveLowerMultiInPlaceBitIdenticalToOutOfPlace) {
  // Forward substitution in place (the allocation-free batch-predict
  // variant) must leave exactly the bits the out-of-place solve produces.
  // Width 150 exercises the wide, 16-column, and ragged-tail strips.
  Matrix a = RandomSpd(40, 17);
  Cholesky chol;
  ASSERT_TRUE(chol.Factorize(a).ok());
  Matrix b = RandomMatrix(40, 150, 23);
  Matrix expected = chol.SolveLowerMulti(b);
  Matrix in_place = b;
  chol.SolveLowerMultiInPlace(&in_place);
  for (size_t i = 0; i < b.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      EXPECT_DOUBLE_EQ(in_place(i, j), expected(i, j))
          << "row " << i << " col " << j;
    }
  }
}

TEST(MatrixTest, ResizeReshapesAndExposesWritableElements) {
  Matrix m(3, 4, 1.5);
  m.Resize(4, 6);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 6u);
  // Contents are unspecified after Resize; every element must be writable
  // and readable at the new shape (this is what the scratch reuse relies
  // on).
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 6; ++c) m(r, c) = static_cast<double>(r * 6 + c);
  }
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 6; ++c) {
      EXPECT_DOUBLE_EQ(m(r, c), static_cast<double>(r * 6 + c));
    }
  }
  // Shrinking reuses the allocation and keeps the view consistent.
  m.Resize(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 42.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 42.0);
}

TEST(CholeskyTest, FactorizeWithJitterBitIdenticalToCopyAndAddDiagonal) {
  // The copy-free jitter path must reproduce the old behavior exactly: the
  // jitter is one addition onto the original diagonal value either way.
  Matrix a(3, 3);
  Vector v = {1.0, 2.0, 3.0};
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) a(r, c) = v[r] * v[c];
  }
  const Matrix original = a;
  Cholesky with_jitter;
  double jitter_used = 0.0;
  ASSERT_TRUE(CholeskyWithJitter(a, &with_jitter, &jitter_used).ok());
  EXPECT_GT(jitter_used, 0.0);
  // Input untouched (the old implementation copied; the new one must not
  // modify in place either).
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(a(r, c), original(r, c));
    }
  }
  // Old-style reference: materialize the jittered matrix and factorize it.
  Matrix jittered = a;
  jittered.AddDiagonal(jitter_used);
  Cholesky reference;
  ASSERT_TRUE(reference.Factorize(jittered).ok());
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(with_jitter.lower()(r, c), reference.lower()(r, c));
    }
  }
}

TEST(CholeskyTest, FailedFactorizeLeavesInputUnmodified) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -100.0;
  const Matrix original = a;
  Cholesky chol;
  double jitter = 0.0;
  EXPECT_FALSE(CholeskyWithJitter(a, &chol, &jitter).ok());
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_DOUBLE_EQ(a(r, c), original(r, c));
    }
  }
}

TEST(CholeskyTest, UpdateAppendBitIdenticalToRefactorize) {
  const size_t n = 10;
  Matrix full = RandomSpd(n + 1, 77);
  // Leading n x n block, appended column, and corner from the same matrix,
  // so the incremental and from-scratch factors describe identical data.
  Matrix head(n, n);
  Vector k(n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) head(r, c) = full(r, c);
    k[r] = full(r, n);
  }
  Cholesky incremental;
  ASSERT_TRUE(incremental.Factorize(head).ok());
  ASSERT_TRUE(incremental.UpdateAppend(k, full(n, n)).ok());

  Cholesky scratch;
  ASSERT_TRUE(scratch.Factorize(full).ok());
  ASSERT_EQ(incremental.size(), n + 1);
  for (size_t r = 0; r <= n; ++r) {
    for (size_t c = 0; c <= n; ++c) {
      EXPECT_DOUBLE_EQ(incremental.lower()(r, c), scratch.lower()(r, c))
          << "at (" << r << "," << c << ")";
    }
  }
}

TEST(CholeskyTest, UpdateAppendRejectsIndefiniteExtensionUnchanged) {
  Matrix a = RandomSpd(4, 13);
  Cholesky chol;
  ASSERT_TRUE(chol.Factorize(a).ok());
  const Matrix before = chol.lower();
  // kss far below ||l12||^2 makes the extension indefinite.
  Vector k(4, 1.0);
  EXPECT_EQ(chol.UpdateAppend(k, -100.0).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_EQ(chol.size(), 4u);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(chol.lower()(r, c), before(r, c));
    }
  }
  // The factor is still usable after the rejected update.
  Vector x = chol.Solve(a.MatVec({1.0, 2.0, 3.0, 4.0}));
  EXPECT_NEAR(x[0], 1.0, 1e-8);
}

TEST(CholeskyTest, UpdateAppendRejectsSizeMismatch) {
  Matrix a = RandomSpd(4, 14);
  Cholesky chol;
  ASSERT_TRUE(chol.Factorize(a).ok());
  EXPECT_EQ(chol.UpdateAppend(Vector(3, 0.0), 1.0).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hypertune
