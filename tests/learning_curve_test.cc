#include "src/problems/learning_curve.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hypertune {
namespace {

TEST(LearningCurveTest, ExponentialBoundaryValues) {
  LearningCurve curve{/*asymptote=*/10.0, /*range=*/80.0, /*rate=*/5.0,
                      /*r_max=*/200.0};
  EXPECT_DOUBLE_EQ(curve.Value(0.0), 90.0);
  EXPECT_NEAR(curve.Value(200.0), 10.0 + 80.0 * std::exp(-5.0), 1e-12);
  EXPECT_GT(curve.Value(10.0), curve.Value(100.0));  // monotone decreasing
}

TEST(LearningCurveTest, NegativeResourceClamped) {
  LearningCurve curve{1.0, 2.0, 3.0, 10.0};
  EXPECT_DOUBLE_EQ(curve.Value(-5.0), curve.Value(0.0));
}

TEST(PowerLawCurveTest, BoundaryValues) {
  PowerLawCurve curve{/*asymptote=*/10.0, /*range=*/80.0, /*alpha=*/1.0,
                      /*r_scale=*/4.0};
  EXPECT_DOUBLE_EQ(curve.Value(0.0), 90.0);
  // At r = r_scale the kernel halves: 10 + 80/2.
  EXPECT_DOUBLE_EQ(curve.Value(4.0), 50.0);
  EXPECT_GT(curve.Value(10.0), curve.Value(100.0));
}

TEST(PowerLawCurveTest, HigherAlphaConvergesFaster) {
  PowerLawCurve slow{0.0, 1.0, 0.6, 4.0};
  PowerLawCurve fast{0.0, 1.0, 1.8, 4.0};
  for (double r : {5.0, 20.0, 80.0}) {
    EXPECT_LT(fast.Value(r), slow.Value(r));
  }
}

TEST(PowerLawCurveTest, CurvesCanCross) {
  // Fast-but-worse vs slow-but-better: the classic early-ranking trap.
  PowerLawCurve fast_bad{12.0, 80.0, 1.8, 4.0};
  PowerLawCurve slow_good{9.0, 80.0, 1.0, 4.0};
  EXPECT_LT(fast_bad.Value(8.0), slow_good.Value(8.0));    // early: fast wins
  EXPECT_GT(fast_bad.Value(200.0), slow_good.Value(200.0));  // late: truth
}

TEST(FidelityNoiseTest, FullResourceGivesBaseSigma) {
  EXPECT_DOUBLE_EQ(FidelityNoiseSigma(200.0, 200.0, 0.5, 1.0), 0.5);
}

TEST(FidelityNoiseTest, LowerResourceInflates) {
  double full = FidelityNoiseSigma(200.0, 200.0, 0.5, 1.0);
  double mid = FidelityNoiseSigma(50.0, 200.0, 0.5, 1.0);
  double low = FidelityNoiseSigma(2.0, 200.0, 0.5, 1.0);
  EXPECT_GT(mid, full);
  EXPECT_GT(low, mid);
  // sqrt scaling: at r = r_max/4 the inflation term is sqrt(4)-1 = 1.
  EXPECT_NEAR(mid, 0.5 * 2.0, 1e-12);
}

TEST(FidelityNoiseTest, BoostZeroDisablesInflation) {
  EXPECT_DOUBLE_EQ(FidelityNoiseSigma(1.0, 200.0, 0.5, 0.0), 0.5);
}

TEST(SeededDrawsTest, DeterministicAndKeySensitive) {
  EXPECT_DOUBLE_EQ(SeededGaussian(1, 2, 3), SeededGaussian(1, 2, 3));
  EXPECT_NE(SeededGaussian(1, 2, 3), SeededGaussian(1, 2, 4));
  EXPECT_NE(SeededGaussian(1, 2, 3), SeededGaussian(2, 1, 3));
  EXPECT_DOUBLE_EQ(SeededUniform(4, 5, 6), SeededUniform(4, 5, 6));
  double u = SeededUniform(7, 8, 9);
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
}

TEST(SeededDrawsTest, GaussianMomentsAcrossKeys) {
  double sum = 0.0, sq = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    double v = SeededGaussian(42, static_cast<uint64_t>(i), 7);
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.08);
}

}  // namespace
}  // namespace hypertune
