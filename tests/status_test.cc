#include "src/common/status.h"

#include <gtest/gtest.h>

namespace hypertune {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad eta");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad eta");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad eta");
}

TEST(StatusTest, FactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Chain(int v) {
  HT_RETURN_IF_ERROR(FailIfNegative(v));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(3).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, ArrowAccess) {
  Result<std::string> r = std::string("abc");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

}  // namespace
}  // namespace hypertune
