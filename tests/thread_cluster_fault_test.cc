// Fault-injection stress for the real-thread backend: 8 workers with seeded
// crashes and a wall-clock watchdog, verified through a tracking decorator
// that every completion/failure callback is delivered exactly once and the
// run shuts down cleanly. Designed to run under ThreadSanitizer (see CI);
// the assertions avoid wall-clock timing so they hold under TSan slowdown.
#include <cmath>
#include <cstdint>
#include <optional>
#include <set>

#include <gtest/gtest.h>

#include "src/optimizer/random_sampler.h"
#include "src/problems/counting_ones.h"
#include "src/runtime/thread_cluster.h"
#include "src/scheduler/async_bracket_scheduler.h"

namespace hypertune {
namespace {

/// Decorator around a real scheduler that records every callback. The
/// cluster serializes scheduler calls under its mutex, so plain containers
/// (and gtest expectations) are safe here.
class TrackingScheduler : public SchedulerInterface {
 public:
  explicit TrackingScheduler(SchedulerInterface* inner) : inner_(inner) {}

  std::optional<Job> NextJob() override {
    std::optional<Job> job = inner_->NextJob();
    if (job.has_value()) issued_.insert(job->job_id);
    return job;
  }

  void OnJobComplete(const Job& job, const EvalResult& result) override {
    EXPECT_TRUE(completed_.insert(job.job_id).second)
        << "duplicate completion for job " << job.job_id;
    EXPECT_EQ(abandoned_.count(job.job_id), 0u)
        << "job " << job.job_id << " completed after being abandoned";
    inner_->OnJobComplete(job, result);
  }

  bool OnJobFailed(const Job& job, const FailureInfo& info) override {
    EXPECT_EQ(completed_.count(job.job_id), 0u)
        << "job " << job.job_id << " failed after completing";
    ++failed_attempts_;
    bool retry = inner_->OnJobFailed(job, info);
    if (retry) {
      ++retries_;
    } else {
      abandoned_.insert(job.job_id);
    }
    return retry;
  }

  bool Exhausted() const override { return inner_->Exhausted(); }

  const std::set<int64_t>& issued() const { return issued_; }
  const std::set<int64_t>& completed() const { return completed_; }
  const std::set<int64_t>& abandoned() const { return abandoned_; }
  int64_t failed_attempts() const { return failed_attempts_; }
  int64_t retries() const { return retries_; }

 private:
  SchedulerInterface* inner_;
  std::set<int64_t> issued_;
  std::set<int64_t> completed_;
  std::set<int64_t> abandoned_;
  int64_t failed_attempts_ = 0;
  int64_t retries_ = 0;
};

/// Issues exactly `total` jobs (resource 1), leaving retry decisions to the
/// default SchedulerInterface policy.
class FixedTotalScheduler : public SchedulerInterface {
 public:
  FixedTotalScheduler(const ConfigurationSpace& space, int64_t total)
      : space_(space), total_(total), rng_(1) {}

  std::optional<Job> NextJob() override {
    if (issued_ >= total_) return std::nullopt;
    Job job;
    job.job_id = issued_++;
    job.config = space_.Sample(&rng_);
    job.level = 1;
    job.resource = 1.0;
    return job;
  }
  void OnJobComplete(const Job&, const EvalResult&) override {}
  bool Exhausted() const override { return issued_ >= total_; }

 private:
  const ConfigurationSpace& space_;
  int64_t total_;
  Rng rng_;
  int64_t issued_ = 0;
};

void CheckBookkeeping(const RunResult& result,
                      const TrackingScheduler& tracker) {
  // Every delivered callback matches the run's accounting: no completion
  // was lost between a worker thread and the history, and no trial was
  // double-reported.
  EXPECT_EQ(result.history.num_trials(), tracker.completed().size());
  EXPECT_EQ(static_cast<size_t>(result.failed_trials),
            tracker.abandoned().size());
  EXPECT_EQ(result.retries, tracker.retries());
  EXPECT_EQ(result.failed_attempts, tracker.failed_attempts());
  EXPECT_EQ(result.failed_attempts, result.retries + result.failed_trials);
  EXPECT_EQ(result.history.num_failures(),
            static_cast<size_t>(result.failed_trials));

  for (int64_t id : tracker.completed()) {
    EXPECT_EQ(tracker.issued().count(id), 1u) << "completion never issued";
    EXPECT_EQ(tracker.abandoned().count(id), 0u);
  }
  for (int64_t id : tracker.abandoned()) {
    EXPECT_EQ(tracker.issued().count(id), 1u) << "abandonment never issued";
  }

  EXPECT_FALSE(std::isnan(result.utilization));
  EXPECT_GE(result.utilization, 0.0);
  EXPECT_LE(result.utilization, 1.0 + 1e-12);
}

TEST(ThreadClusterFaultTest, ChaosRunLosesNoCompletions) {
  CountingOnes problem;
  MeasurementStore store(3);
  RandomSampler sampler(&problem.space(), &store, 5);
  BracketSchedulerOptions scheduler_options;
  scheduler_options.ladder.eta = 3.0;
  scheduler_options.ladder.num_levels = 3;
  scheduler_options.ladder.max_resource = 27.0;
  scheduler_options.selector.policy = BracketPolicy::kFixed;
  scheduler_options.selector.fixed_bracket = 1;
  AsyncBracketScheduler inner(&problem.space(), &store, &sampler, nullptr,
                              scheduler_options);
  TrackingScheduler tracker(&inner);

  ThreadClusterOptions options;
  options.num_workers = 8;
  options.time_budget_seconds = 2.0;
  options.seed = 9;
  // Costs are 3/9/27 simulated seconds -> a few ms of real sleep per job,
  // with the watchdog killing full-fidelity attempts (27 * 2e-3 = 54 ms).
  options.cost_sleep_scale = 2e-3;
  options.faults.crash_probability = 0.3;
  options.faults.timeout_seconds = 0.025;
  options.faults.max_retries = 1;
  options.faults.retry_backoff_seconds = 0.01;
  ThreadCluster cluster(options);
  RunResult result = cluster.Run(&tracker, problem);

  CheckBookkeeping(result, tracker);
  EXPECT_GT(result.history.num_trials(), 0u);
  // With p = 0.3 over hundreds of attempts, failures are certain (and they
  // are drawn per (seed, job_id, attempt), not per thread interleaving).
  EXPECT_GT(result.failed_attempts, 0);
  EXPECT_GT(result.failed_trials, 0);
  EXPECT_GT(result.wasted_seconds, 0.0);
}

TEST(ThreadClusterFaultTest, FaultFreeRunHasNoFailureAccounting) {
  CountingOnes problem;
  MeasurementStore store(3);
  RandomSampler sampler(&problem.space(), &store, 5);
  BracketSchedulerOptions scheduler_options;
  scheduler_options.ladder.eta = 3.0;
  scheduler_options.ladder.num_levels = 3;
  scheduler_options.ladder.max_resource = 27.0;
  scheduler_options.selector.policy = BracketPolicy::kFixed;
  scheduler_options.selector.fixed_bracket = 1;
  AsyncBracketScheduler inner(&problem.space(), &store, &sampler, nullptr,
                              scheduler_options);
  TrackingScheduler tracker(&inner);

  ThreadClusterOptions options;
  options.num_workers = 8;
  options.time_budget_seconds = 1.0;
  options.seed = 9;
  options.cost_sleep_scale = 1e-3;
  ThreadCluster cluster(options);
  RunResult result = cluster.Run(&tracker, problem);

  CheckBookkeeping(result, tracker);
  EXPECT_GT(result.history.num_trials(), 0u);
  EXPECT_EQ(result.failed_attempts, 0);
  EXPECT_EQ(result.retries, 0);
  EXPECT_EQ(result.failed_trials, 0);
  EXPECT_DOUBLE_EQ(result.wasted_seconds, 0.0);
}

TEST(ThreadClusterFaultTest, EveryIssuedJobIsResolvedBeforeShutdown) {
  // A fixed amount of work under heavy faults: the run must end via clean
  // exhaustion (not the budget), with every one of the 40 jobs either
  // completed or abandoned — retries in flight must keep the cluster alive
  // until they resolve.
  CountingOnes problem;
  FixedTotalScheduler inner(problem.space(), 40);
  TrackingScheduler tracker(&inner);

  ThreadClusterOptions options;
  options.num_workers = 8;
  options.time_budget_seconds = 30.0;
  options.seed = 21;
  options.cost_sleep_scale = 1e-3;
  options.faults.crash_probability = 0.5;
  options.faults.max_retries = 2;
  options.faults.retry_backoff_seconds = 0.005;
  ThreadCluster cluster(options);
  RunResult result = cluster.Run(&tracker, problem);

  CheckBookkeeping(result, tracker);
  EXPECT_EQ(tracker.issued().size(), 40u);
  EXPECT_EQ(tracker.completed().size() + tracker.abandoned().size(), 40u);
  EXPECT_LT(result.elapsed_seconds, 30.0);
}

}  // namespace
}  // namespace hypertune
