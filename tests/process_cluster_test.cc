// Supervision proof for the multi-process backend: workers are real
// subprocesses, so the tests SIGKILL and SIGSTOP them mid-attempt and
// assert the driver classifies, requeues, respawns, and still finishes the
// run — then leaves no children behind. The worker binary path comes from
// the build (HYPERTUNE_WORKER_BINARY). CI's chaos matrix re-runs this
// suite with HYPERTUNE_CHAOS_SEED=0/1/2 to shift the base seeds, so the
// invariants hold across different kill/respawn timelines.
#include "src/runtime/process_cluster.h"

#include <sys/wait.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/obs/observability.h"
#include "src/optimizer/random_sampler.h"
#include "src/problems/counting_ones.h"
#include "src/runtime/journal.h"
#include "src/scheduler/sync_bracket_scheduler.h"

namespace hypertune {
namespace {

/// Base seed shifted by the CI chaos matrix (HYPERTUNE_CHAOS_SEED=0/1/2),
/// so every matrix leg exercises a different kill/respawn timeline.
uint64_t ChaosSeed(uint64_t base) {
  const char* env = std::getenv("HYPERTUNE_CHAOS_SEED");
  if (env == nullptr) return base;
  return base + std::strtoull(env, nullptr, 10);
}

/// Everything one process-backend run needs, freshly constructed.
struct RunSetup {
  CountingOnes problem;
  std::unique_ptr<MeasurementStore> store;
  std::unique_ptr<RandomSampler> sampler;
  std::unique_ptr<SyncBracketScheduler> scheduler;
};

std::unique_ptr<RunSetup> MakeSetup() {
  auto setup = std::make_unique<RunSetup>();
  setup->store = std::make_unique<MeasurementStore>(3);
  setup->sampler = std::make_unique<RandomSampler>(
      &setup->problem.space(), setup->store.get(), /*seed=*/ChaosSeed(17));
  BracketSchedulerOptions options;
  options.ladder.eta = 3.0;
  options.ladder.num_levels = 3;
  options.ladder.max_resource = 729.0;
  options.selector.policy = BracketPolicy::kRoundRobin;
  setup->scheduler = std::make_unique<SyncBracketScheduler>(
      &setup->problem.space(), setup->store.get(), setup->sampler.get(),
      nullptr, options);
  return setup;
}

ProcessClusterOptions BaseOptions() {
  ProcessClusterOptions options;
  options.num_workers = 2;
  options.time_budget_seconds = 60.0;  // tests stop on max_trials
  options.max_trials = 12;
  options.seed = ChaosSeed(42);
  options.worker_binary = HYPERTUNE_WORKER_BINARY;
  options.problem_spec = "counting-ones";
  options.heartbeat_interval_seconds = 0.02;
  options.heartbeat_timeout_seconds = 1.0;
  options.respawn_backoff_seconds = 0.005;
  options.respawn_backoff_cap_seconds = 0.05;
  return options;
}

/// True once this process has no children left to reap — the drain
/// contract: every worker was waited on, none leaked as a zombie.
bool NoChildrenRemain() {
  const pid_t reaped = ::waitpid(-1, nullptr, WNOHANG);
  return reaped < 0 && errno == ECHILD;
}

TEST(ProcessClusterTest, RunsTrialsOnWorkerSubprocessesAndDrains) {
  std::unique_ptr<RunSetup> setup = MakeSetup();
  ProcessClusterOptions options = BaseOptions();
  Observability sink;
  options.obs.sink = &sink;
  std::unique_ptr<RunJournal> journal =
      RunJournal::CreateInMemory(/*fingerprint=*/1);
  options.journal = journal.get();

  ProcessCluster cluster(options);
  RunResult result = cluster.Run(setup->scheduler.get(), setup->problem);

  EXPECT_EQ(static_cast<int64_t>(result.history.trials().size()),
            options.max_trials);
  EXPECT_EQ(result.worker_deaths, 0);
  EXPECT_EQ(result.failed_attempts, 0);
  EXPECT_GT(result.busy_seconds, 0.0);
  EXPECT_GT(result.elapsed_seconds, 0.0);
  // The evaluations really happened out-of-process but reproduce the
  // problem bit-exactly: worker-side Evaluate uses the same
  // (config, resource, noise seed) contract the in-process backends use.
  for (const TrialRecord& trial : result.history.trials()) {
    const EvalOutcome expected = setup->problem.Evaluate(
        trial.job.config, trial.job.resource,
        CombineSeeds(options.seed, trial.job.config.Hash()));
    EXPECT_EQ(trial.result.objective, expected.objective);
    EXPECT_EQ(trial.result.test_objective, expected.test_objective);
  }
  EXPECT_TRUE(journal->ok()) << journal->status().ToString();
  EXPECT_GT(journal->records_appended(), 0);

  MetricsSnapshot metrics = sink.metrics.Snapshot();
  EXPECT_EQ(metrics.counters["process.spawns"], options.num_workers);
  EXPECT_EQ(metrics.counters["jobs.completed"], options.max_trials);
  EXPECT_TRUE(NoChildrenRemain());
}

TEST(ProcessClusterTest, SurvivesSigkillOfAnyWorkerMidAttempt) {
  std::unique_ptr<RunSetup> setup = MakeSetup();
  ProcessClusterOptions options = BaseOptions();
  options.chaos_kill_every = 3;  // SIGKILL the worker of every 3rd dispatch
  Observability sink;
  options.obs.sink = &sink;

  ProcessCluster cluster(options);
  RunResult result = cluster.Run(setup->scheduler.get(), setup->problem);

  // Every kill orphans the attempt in the worker's hands; the run still
  // completes its trial quota because orphans are requeued and dead slots
  // respawn.
  EXPECT_EQ(static_cast<int64_t>(result.history.trials().size()),
            options.max_trials);
  EXPECT_GT(result.worker_deaths, 0);
  EXPECT_GT(result.worker_lost_attempts, 0);
  EXPECT_EQ(result.crash_attempts, 0);  // SIGKILL is loss, not crash
  EXPECT_EQ(result.failed_trials, 0);   // loss never consumes retry budget
  EXPECT_GT(result.retries, 0);

  MetricsSnapshot metrics = sink.metrics.Snapshot();
  EXPECT_GT(metrics.counters["process.respawns"], 0);
  EXPECT_GT(metrics.counters["workers.deaths"], 0);
  EXPECT_GT(metrics.counters["jobs.requeued"], 0);
  bool saw_spawn = false, saw_exit = false;
  for (const TraceEvent& event : sink.trace.Snapshot()) {
    if (event.kind == TraceKind::kProcessSpawn) saw_spawn = true;
    if (event.kind == TraceKind::kProcessExit) saw_exit = true;
  }
  EXPECT_TRUE(saw_spawn);
  EXPECT_TRUE(saw_exit);
  EXPECT_TRUE(NoChildrenRemain());
}

TEST(ProcessClusterTest, WorkerLossPreservesRetryBudget) {
  // max_retries = 0: any job-level failure would abandon the trial
  // immediately. Killed workers must therefore not count against the
  // budget — all trials still complete despite repeated kills.
  std::unique_ptr<RunSetup> setup = MakeSetup();
  ProcessClusterOptions options = BaseOptions();
  options.max_trials = 9;
  options.chaos_kill_every = 4;
  options.faults.max_retries = 0;

  ProcessCluster cluster(options);
  RunResult result = cluster.Run(setup->scheduler.get(), setup->problem);

  EXPECT_EQ(static_cast<int64_t>(result.history.trials().size()),
            options.max_trials);
  EXPECT_GT(result.worker_lost_attempts, 0);
  EXPECT_EQ(result.failed_trials, 0);
  EXPECT_TRUE(NoChildrenRemain());
}

TEST(ProcessClusterTest, HeartbeatTimeoutCatchesFrozenWorker) {
  // SIGSTOP freezes the whole process — evaluation loop and heartbeat
  // thread alike — so only the driver's heartbeat deadline can detect it.
  // Freeze the worker of one mid-rung dispatch. The sync bracket barrier
  // cannot pass until that frozen job completes, and the trial quota lies
  // beyond the barrier — so finishing the run is impossible unless the
  // heartbeat deadline detects the frozen worker, kills it, requeues the
  // orphan, and respawns the slot.
  std::unique_ptr<RunSetup> setup = MakeSetup();
  ProcessClusterOptions options = BaseOptions();
  options.max_trials = 12;
  options.chaos_stop_every = 6;
  options.heartbeat_timeout_seconds = 0.25;
  Observability sink;
  options.obs.sink = &sink;

  ProcessCluster cluster(options);
  RunResult result = cluster.Run(setup->scheduler.get(), setup->problem);

  EXPECT_EQ(static_cast<int64_t>(result.history.trials().size()),
            options.max_trials);
  EXPECT_GT(result.worker_deaths, 0);
  EXPECT_GT(result.worker_lost_attempts, 0);

  MetricsSnapshot metrics = sink.metrics.Snapshot();
  EXPECT_GT(metrics.counters["process.heartbeat_misses"], 0);
  bool saw_miss = false;
  for (const TraceEvent& event : sink.trace.Snapshot()) {
    if (event.kind == TraceKind::kHeartbeatMiss) saw_miss = true;
  }
  EXPECT_TRUE(saw_miss);
  EXPECT_TRUE(NoChildrenRemain());
}

TEST(ProcessClusterTest, InjectedCrashesConsumeRetryBudgetAndAbandon) {
  // Driver-side PlanAttempt dooms attempts; the worker _exits mid-attempt
  // with the crash code, which the driver classifies as kCrash (budget
  // consumed) — with zero retries every crashed trial is abandoned.
  std::unique_ptr<RunSetup> setup = MakeSetup();
  ProcessClusterOptions options = BaseOptions();
  options.max_trials = 10;
  options.faults.crash_probability = 0.3;
  options.faults.max_retries = 1;
  options.faults.retry_backoff_seconds = 0.01;

  ProcessCluster cluster(options);
  RunResult result = cluster.Run(setup->scheduler.get(), setup->problem);

  EXPECT_EQ(static_cast<int64_t>(result.history.trials().size()),
            options.max_trials);
  EXPECT_GT(result.crash_attempts, 0);
  EXPECT_GT(result.worker_deaths, 0);  // a crash kills the whole process
  EXPECT_GT(result.retries, 0);
  EXPECT_TRUE(NoChildrenRemain());
}

TEST(ProcessClusterTest, BrokenWorkerBinaryFailsSlotsPermanently) {
  // A binary that dies before the hello handshake (here: unknown problem
  // spec) must not respawn-loop forever: after the spawn-failure cap every
  // slot is declared permanently failed and Run returns empty-handed.
  std::unique_ptr<RunSetup> setup = MakeSetup();
  ProcessClusterOptions options = BaseOptions();
  options.problem_spec = "no-such-problem";
  options.time_budget_seconds = 30.0;
  options.max_consecutive_spawn_failures = 2;

  ProcessCluster cluster(options);
  RunResult result = cluster.Run(setup->scheduler.get(), setup->problem);

  EXPECT_TRUE(result.history.trials().empty());
  EXPECT_EQ(result.workers_lost_permanently, options.num_workers);
  EXPECT_GE(result.worker_deaths,
            options.num_workers * options.max_consecutive_spawn_failures);
  EXPECT_TRUE(NoChildrenRemain());
}

}  // namespace
}  // namespace hypertune
