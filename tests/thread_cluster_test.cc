#include "src/runtime/thread_cluster.h"

#include <gtest/gtest.h>

#include "src/core/tuner_factory.h"
#include "src/problems/counting_ones.h"
#include "src/runtime/scheduler_interface.h"

namespace hypertune {
namespace {

/// Issues exactly `total` jobs; used to verify exhaustion shutdown.
class CountingScheduler : public SchedulerInterface {
 public:
  CountingScheduler(const ConfigurationSpace& space, int64_t total)
      : space_(space), total_(total), rng_(1) {}

  std::optional<Job> NextJob() override {
    if (issued_ >= total_) return std::nullopt;
    Job job;
    job.job_id = issued_++;
    job.config = space_.Sample(&rng_);
    job.level = 1;
    job.resource = 1.0;
    return job;
  }
  void OnJobComplete(const Job&, const EvalResult&) override { ++completed_; }
  bool Exhausted() const override { return issued_ >= total_; }
  int64_t completed() const { return completed_; }

 private:
  const ConfigurationSpace& space_;
  int64_t total_;
  Rng rng_;
  int64_t issued_ = 0;
  int64_t completed_ = 0;
};

TEST(ThreadClusterTest, CompletesAllJobsAndStops) {
  CountingOnes problem;
  CountingScheduler scheduler(problem.space(), 50);
  ThreadClusterOptions options;
  options.num_workers = 4;
  options.time_budget_seconds = 30.0;
  ThreadCluster cluster(options);
  RunResult result = cluster.Run(&scheduler, problem);
  EXPECT_EQ(result.history.num_trials(), 50u);
  EXPECT_EQ(scheduler.completed(), 50);
  EXPECT_LT(result.elapsed_seconds, 30.0);
}

TEST(ThreadClusterTest, MaxTrialsStopsEarly) {
  CountingOnes problem;
  CountingScheduler scheduler(problem.space(), 1000000);
  ThreadClusterOptions options;
  options.num_workers = 4;
  options.time_budget_seconds = 30.0;
  options.max_trials = 25;
  ThreadCluster cluster(options);
  RunResult result = cluster.Run(&scheduler, problem);
  // Workers already mid-evaluation may add a few extra completions.
  EXPECT_GE(result.history.num_trials(), 25u);
  EXPECT_LE(result.history.num_trials(), 25u + 4u);
}

TEST(ThreadClusterTest, TimestampsAreOrderedAndNonNegative) {
  CountingOnes problem;
  CountingScheduler scheduler(problem.space(), 30);
  ThreadClusterOptions options;
  options.num_workers = 2;
  options.time_budget_seconds = 30.0;
  ThreadCluster cluster(options);
  RunResult result = cluster.Run(&scheduler, problem);
  for (const TrialRecord& t : result.history.trials()) {
    EXPECT_GE(t.start_time, 0.0);
    EXPECT_GE(t.end_time, t.start_time);
    EXPECT_GE(t.worker, 0);
    EXPECT_LT(t.worker, 2);
  }
}

TEST(ThreadClusterTest, RunsFullTunerEndToEnd) {
  // The same Tuner machinery used on the simulator runs on real threads.
  CountingOnes problem;
  TunerFactoryOptions factory;
  factory.method = Method::kHyperTune;
  factory.seed = 3;
  std::unique_ptr<Tuner> tuner = CreateTuner(problem, factory);
  ThreadClusterOptions options;
  options.num_workers = 4;
  options.time_budget_seconds = 2.0;
  options.max_trials = 120;
  RunResult result = tuner->RunOnThreads(problem, options);
  EXPECT_GT(result.history.num_trials(), 20u);
  // Progress was made towards the optimum of -1.
  EXPECT_LT(result.history.best_objective(), -0.5);
}

TEST(ThreadClusterTest, CostSleepScaleSlowsWallClock) {
  CountingOnes problem;  // cost = resource seconds = 1 s per job here
  CountingScheduler scheduler(problem.space(), 8);
  ThreadClusterOptions options;
  options.num_workers = 4;
  options.time_budget_seconds = 30.0;
  options.cost_sleep_scale = 0.02;  // 1 s simulated -> 20 ms wall
  ThreadCluster cluster(options);
  RunResult result = cluster.Run(&scheduler, problem);
  EXPECT_EQ(result.history.num_trials(), 8u);
  // 8 jobs x 20 ms / 4 workers ≈ 40 ms minimum.
  EXPECT_GE(result.elapsed_seconds, 0.03);
}

}  // namespace
}  // namespace hypertune
