// Property tests for the versioned binary wire format: seeded-random
// round-trips must be exact (doubles bit-for-bit), and *no* corruption —
// every single-byte truncation, every single-bit flip, arbitrary random
// bytes — may ever crash, hang, or over-read; each must surface as a clean
// Status. The whole corpus runs under ASan/UBSan in CI, so an over-read
// would be caught even if it happened to return plausible data.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/runtime/wire_format.h"

namespace hypertune {
namespace {

uint64_t Bits(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

Job RandomJob(std::mt19937_64* rng) {
  std::uniform_real_distribution<double> unit(-1e6, 1e6);
  std::uniform_int_distribution<int> small(1, 7);
  Job job;
  job.job_id = static_cast<int64_t>((*rng)());
  std::vector<double> values(small(*rng));
  for (double& v : values) v = unit(*rng);
  job.config = Configuration(std::move(values));
  job.level = small(*rng);
  job.resource = unit(*rng);
  job.resume_from = unit(*rng);
  job.bracket = small(*rng) - 2;  // includes the bracket-less -1
  job.attempt = small(*rng);
  return job;
}

EvalResult RandomResult(std::mt19937_64* rng) {
  std::uniform_real_distribution<double> unit(-1e6, 1e6);
  EvalResult result;
  result.objective = unit(*rng);
  result.test_objective = unit(*rng);
  result.cost_seconds = unit(*rng);
  return result;
}

void ExpectJobsEqual(const Job& a, const Job& b) {
  EXPECT_EQ(a.job_id, b.job_id);
  ASSERT_EQ(a.config.size(), b.config.size());
  for (size_t d = 0; d < a.config.size(); ++d) {
    EXPECT_EQ(Bits(a.config[d]), Bits(b.config[d]));
  }
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(Bits(a.resource), Bits(b.resource));
  EXPECT_EQ(Bits(a.resume_from), Bits(b.resume_from));
  EXPECT_EQ(a.bracket, b.bracket);
  EXPECT_EQ(a.attempt, b.attempt);
}

TEST(WireFormatTest, PrimitivesRoundTrip) {
  WireEncoder enc;
  enc.PutU8(0xAB);
  enc.PutU32(0xDEADBEEFu);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutI32(-7);
  enc.PutI64(-9000000000ll);
  enc.PutF64(-0.0);
  enc.PutBool(true);
  enc.PutBool(false);
  enc.PutString("hello");
  enc.PutString("");
  enc.PutDoubles({1.5, -2.5, 3.25});
  enc.PutDoubles({});

  WireDecoder dec(enc.bytes());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  int64_t i64;
  double f64;
  bool b;
  std::string s;
  std::vector<double> ds;
  ASSERT_TRUE(dec.GetU8(&u8).ok());
  EXPECT_EQ(u8, 0xAB);
  ASSERT_TRUE(dec.GetU32(&u32).ok());
  EXPECT_EQ(u32, 0xDEADBEEFu);
  ASSERT_TRUE(dec.GetU64(&u64).ok());
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  ASSERT_TRUE(dec.GetI32(&i32).ok());
  EXPECT_EQ(i32, -7);
  ASSERT_TRUE(dec.GetI64(&i64).ok());
  EXPECT_EQ(i64, -9000000000ll);
  ASSERT_TRUE(dec.GetF64(&f64).ok());
  EXPECT_EQ(Bits(f64), Bits(-0.0));  // signed zero survives
  ASSERT_TRUE(dec.GetBool(&b).ok());
  EXPECT_TRUE(b);
  ASSERT_TRUE(dec.GetBool(&b).ok());
  EXPECT_FALSE(b);
  ASSERT_TRUE(dec.GetString(&s).ok());
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(dec.GetString(&s).ok());
  EXPECT_EQ(s, "");
  ASSERT_TRUE(dec.GetDoubles(&ds).ok());
  EXPECT_EQ(ds, (std::vector<double>{1.5, -2.5, 3.25}));
  ASSERT_TRUE(dec.GetDoubles(&ds).ok());
  EXPECT_TRUE(ds.empty());
  EXPECT_TRUE(dec.ExpectEnd("primitives").ok());
}

TEST(WireFormatTest, LittleEndianOnTheWire) {
  WireEncoder enc;
  enc.PutU32(0x01020304u);
  const std::string& b = enc.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(b[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(b[3]), 0x01);
}

TEST(WireFormatTest, SeededStructuresRoundTripExactly) {
  std::mt19937_64 rng(20260808);
  for (int iter = 0; iter < 200; ++iter) {
    Job job = RandomJob(&rng);
    EvalResult result = RandomResult(&rng);
    WireEncoder enc;
    EncodeJob(job, &enc);
    EncodeEvalResult(result, &enc);

    WireDecoder dec(enc.bytes());
    Job job2;
    EvalResult result2;
    ASSERT_TRUE(DecodeJob(&dec, &job2).ok());
    ASSERT_TRUE(DecodeEvalResult(&dec, &result2).ok());
    ASSERT_TRUE(dec.ExpectEnd("job+result").ok());
    ExpectJobsEqual(job, job2);
    EXPECT_EQ(Bits(result.objective), Bits(result2.objective));
    EXPECT_EQ(Bits(result.test_objective), Bits(result2.test_objective));
    EXPECT_EQ(Bits(result.cost_seconds), Bits(result2.cost_seconds));
  }
}

TEST(WireFormatTest, DecodeJobValidatesRanges) {
  Job bad;
  bad.level = -1;
  {
    WireEncoder enc;
    EncodeJob(bad, &enc);
    WireDecoder dec(enc.bytes());
    Job out;
    EXPECT_EQ(DecodeJob(&dec, &out).code(), StatusCode::kInvalidArgument);
  }
  bad.level = 1;
  bad.attempt = 0;
  {
    WireEncoder enc;
    EncodeJob(bad, &enc);
    WireDecoder dec(enc.bytes());
    Job out;
    EXPECT_EQ(DecodeJob(&dec, &out).code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireFormatTest, BoolByteMustBeZeroOrOne) {
  std::string byte(1, '\x02');
  WireDecoder dec(byte);
  bool b;
  EXPECT_EQ(dec.GetBool(&b).code(), StatusCode::kInvalidArgument);
}

TEST(WireFormatTest, LengthPrefixedReadsAreBounded) {
  // A string/vector length claiming more bytes than remain must fail
  // without touching memory past the buffer (ASan would flag it).
  WireEncoder enc;
  enc.PutU32(1000);  // claims 1000 bytes / 1000 doubles; none follow
  {
    WireDecoder dec(enc.bytes());
    std::string s;
    EXPECT_EQ(dec.GetString(&s).code(), StatusCode::kOutOfRange);
  }
  {
    WireDecoder dec(enc.bytes());
    std::vector<double> ds;
    EXPECT_EQ(dec.GetDoubles(&ds).code(), StatusCode::kOutOfRange);
  }
  // The pathological count (0xFFFFFFFF * 8 bytes) must not allocate.
  WireEncoder huge;
  huge.PutU32(0xFFFFFFFFu);
  WireDecoder dec(huge.bytes());
  std::vector<double> ds;
  EXPECT_EQ(dec.GetDoubles(&ds).code(), StatusCode::kOutOfRange);
}

std::string BuildStream(std::vector<std::string>* payloads_out) {
  std::mt19937_64 rng(7);
  std::string stream;
  std::vector<std::string> payloads;
  for (int i = 0; i < 3; ++i) {
    WireEncoder enc;
    enc.PutU8(static_cast<uint8_t>(i + 1));
    EncodeJob(RandomJob(&rng), &enc);
    payloads.push_back(enc.bytes());
    AppendRecord(enc.Release(), &stream);
  }
  if (payloads_out != nullptr) *payloads_out = payloads;
  return stream;
}

TEST(WireFormatTest, FramedRecordsRoundTrip) {
  std::vector<std::string> payloads;
  std::string stream = BuildStream(&payloads);
  RecordScan scan = ScanRecords(stream);
  EXPECT_TRUE(scan.tail.ok());
  EXPECT_EQ(scan.clean_bytes, stream.size());
  ASSERT_EQ(scan.records.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(scan.records[i], payloads[i]);
  }
}

TEST(WireFormatTest, EveryTruncationYieldsCleanPrefix) {
  std::vector<std::string> payloads;
  std::string stream = BuildStream(&payloads);
  // Record boundaries, to distinguish "clean cut" from "torn record".
  std::vector<size_t> boundaries = {0};
  for (const std::string& p : payloads) {
    boundaries.push_back(boundaries.back() + 8 + p.size());
  }
  for (size_t cut = 0; cut < stream.size(); ++cut) {
    RecordScan scan = ScanRecords(stream.data(), cut);
    const bool on_boundary =
        std::find(boundaries.begin(), boundaries.end(), cut) !=
        boundaries.end();
    if (on_boundary) {
      EXPECT_TRUE(scan.tail.ok()) << "cut at " << cut;
      EXPECT_EQ(scan.clean_bytes, cut);
    } else {
      EXPECT_EQ(scan.tail.code(), StatusCode::kDataLoss) << "cut at " << cut;
    }
    // Whatever survived is an exact prefix of the original records.
    ASSERT_LE(scan.records.size(), payloads.size());
    for (size_t i = 0; i < scan.records.size(); ++i) {
      EXPECT_EQ(scan.records[i], payloads[i]);
    }
  }
}

TEST(WireFormatTest, EveryBitFlipIsDetected) {
  std::vector<std::string> payloads;
  std::string stream = BuildStream(&payloads);
  for (size_t byte = 0; byte < stream.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = stream;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      RecordScan scan = ScanRecords(corrupt);
      // A flip anywhere (length, CRC, or payload) must stop the scan with
      // DataLoss at the damaged record; records before it are untouched.
      EXPECT_EQ(scan.tail.code(), StatusCode::kDataLoss)
          << "flip at byte " << byte << " bit " << bit;
      ASSERT_LT(scan.records.size(), payloads.size() + 1);
      for (size_t i = 0; i < scan.records.size(); ++i) {
        EXPECT_EQ(scan.records[i], payloads[i])
            << "flip at byte " << byte << " bit " << bit;
      }
    }
  }
}

TEST(WireFormatTest, OversizedLengthPrefixIsRejectedWithoutAllocating) {
  std::string stream;
  WireEncoder header;
  header.PutU32(kWireMaxPayload + 1);
  header.PutU32(0);  // crc, irrelevant: length check fires first
  stream = header.Release();
  stream.append(16, '\0');
  RecordScan scan = ScanRecords(stream);
  EXPECT_EQ(scan.tail.code(), StatusCode::kDataLoss);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_NE(scan.tail.message().find("sanity cap"), std::string::npos);
}

TEST(WireFormatTest, RandomBytesNeverCrashTheScannerOrDecoders) {
  // Pure fuzz: feed arbitrary bytes to the scanner and the typed decoders.
  // The assertions are weak on purpose — the property under test is "no
  // crash, no hang, no over-read", which ASan/UBSan enforce in CI.
  std::mt19937_64 rng(0xF00DF00D);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> len(0, 512);
  for (int iter = 0; iter < 256; ++iter) {
    std::string noise(len(rng), '\0');
    for (char& c : noise) c = static_cast<char>(byte(rng));
    RecordScan scan = ScanRecords(noise);
    EXPECT_LE(scan.clean_bytes, noise.size());
    for (const std::string& payload : scan.records) {
      WireDecoder dec(payload);
      Job job;
      DecodeJob(&dec, &job).IgnoreError();
      WireDecoder dec2(payload);
      EvalResult result;
      DecodeEvalResult(&dec2, &result).IgnoreError();
      WireDecoder dec3(payload);
      std::string s;
      dec3.GetString(&s).IgnoreError();
    }
  }
}

TEST(WireFormatTest, ExpectEndRejectsTrailingGarbage) {
  WireEncoder enc;
  enc.PutU8(1);
  enc.PutU8(2);
  WireDecoder dec(enc.bytes());
  uint8_t v;
  ASSERT_TRUE(dec.GetU8(&v).ok());
  Status tail = dec.ExpectEnd("test record");
  EXPECT_EQ(tail.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(tail.message().find("test record"), std::string::npos);
}

TEST(WireFormatTest, Crc32MatchesKnownVector) {
  // IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

}  // namespace
}  // namespace hypertune
