#include "src/common/statistics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hypertune {
namespace {

TEST(StatisticsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatisticsTest, VarianceAndStdDev) {
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1.0, 3.0}), 2.0);  // sample (n-1)
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
  EXPECT_NEAR(StdDev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 1e-3);
}

TEST(StatisticsTest, StdDevIsSqrtOfVariance) {
  // Regression: Variance used the population (n) divisor while StdDev used
  // the sample (n-1) divisor, so StdDev({x})^2 != Variance({x}). Both now
  // follow the sample convention.
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(StdDev(values), std::sqrt(Variance(values)));
  EXPECT_DOUBLE_EQ(Variance(values), 32.0 / 7.0);
}

TEST(StatisticsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

struct QuantileCase {
  double q;
  double expected;
};

class QuantileTest : public ::testing::TestWithParam<QuantileCase> {};

TEST_P(QuantileTest, InterpolatesLinearly) {
  // Sorted data 0..10 -> quantile q maps to 10q.
  std::vector<double> data;
  for (int i = 0; i <= 10; ++i) data.push_back(static_cast<double>(i));
  EXPECT_NEAR(Quantile(data, GetParam().q), GetParam().expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuantileTest,
    ::testing::Values(QuantileCase{0.0, 0.0}, QuantileCase{0.25, 2.5},
                      QuantileCase{0.5, 5.0}, QuantileCase{0.75, 7.5},
                      QuantileCase{1.0, 10.0}, QuantileCase{0.33, 3.3}));

TEST(StatisticsTest, MinMax) {
  auto [lo, hi] = MinMax({3.0, -1.0, 7.0, 2.0});
  EXPECT_DOUBLE_EQ(lo, -1.0);
  EXPECT_DOUBLE_EQ(hi, 7.0);
}

TEST(StatisticsTest, AverageRanksWithTies) {
  std::vector<double> ranks = AverageRanks({10.0, 20.0, 20.0, 5.0});
  EXPECT_DOUBLE_EQ(ranks[3], 0.0);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
}

TEST(StatisticsTest, SpearmanPerfectCorrelation) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> b = {10.0, 20.0, 30.0, 40.0};
  EXPECT_NEAR(SpearmanCorrelation(a, b), 1.0, 1e-12);
  std::vector<double> c = {40.0, 30.0, 20.0, 10.0};
  EXPECT_NEAR(SpearmanCorrelation(a, c), -1.0, 1e-12);
}

TEST(StatisticsTest, SpearmanDegenerateInputs) {
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({1.0}, {2.0}), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({1.0, 1.0}, {2.0, 3.0}), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({1.0, 2.0}, {2.0, 3.0, 4.0}), 0.0);
}

TEST(StatisticsTest, KendallTauKnownValue) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> b = {1.0, 3.0, 2.0, 4.0};
  // 5 concordant, 1 discordant out of 6 pairs -> (5-1)/6.
  EXPECT_NEAR(KendallTau(a, b), 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(KendallTau(a, a), 1.0, 1e-12);
}

TEST(StatisticsTest, NormalPdfCdf) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989423, 1e-6);
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959964), 0.975, 1e-5);
  EXPECT_NEAR(NormalCdf(-1.959964), 0.025, 1e-5);
}

TEST(StatisticsTest, Clamp) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

}  // namespace
}  // namespace hypertune
