// Cross-cutting property tests: invariants that must hold for EVERY method
// on EVERY problem family (parameterized sweep). These are the contracts
// the execution backends and experiment harnesses rely on.

#include <cmath>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "src/core/tuner_factory.h"
#include "src/problems/counting_ones.h"
#include "src/problems/nas_bench.h"
#include "src/problems/xgboost_surface.h"
#include "src/scheduler/bracket.h"

namespace hypertune {
namespace {

struct SweepCase {
  Method method;
  const char* problem;
};

std::unique_ptr<TuningProblem> MakeProblem(const std::string& name) {
  if (name == "counting") {
    CountingOnesOptions options;
    options.num_categorical = 4;
    options.num_continuous = 4;
    options.max_samples = 81.0;
    return std::make_unique<CountingOnes>(options);
  }
  if (name == "nas") {
    return std::make_unique<SyntheticNasBench>(
        NasBenchOptions{NasDataset::kCifar10Valid, 2022});
  }
  return std::make_unique<SyntheticXgboost>(
      XgbOptions{XgbDataset::kCovertype, 2022});
}

double BudgetFor(const std::string& problem) {
  if (problem == "counting") return 2000.0;
  if (problem == "nas") return 4.0 * 3600.0;
  return 1.5 * 3600.0;
}

class MethodPropertyTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  RunResult Run(uint64_t seed, Tuner** tuner_out = nullptr) {
    problem_ = MakeProblem(GetParam().problem);
    TunerFactoryOptions factory;
    factory.method = GetParam().method;
    factory.seed = seed;
    factory.batch_size = 4;
    tuner_ = CreateTuner(*problem_, factory);
    if (tuner_out != nullptr) *tuner_out = tuner_.get();
    ClusterOptions cluster;
    cluster.num_workers = 4;
    cluster.time_budget_seconds = BudgetFor(GetParam().problem);
    cluster.seed = seed;
    return tuner_->Run(*problem_, cluster);
  }

  std::unique_ptr<TuningProblem> problem_;
  std::unique_ptr<Tuner> tuner_;
};

TEST_P(MethodPropertyTest, ResourcesLieOnTheLadder) {
  RunResult run = Run(3);
  ASSERT_GT(run.history.num_trials(), 3u);
  ResourceLadder ladder = ResourceLadder::Make(
      problem_->min_resource(), problem_->max_resource(), 3.0, 4);
  std::vector<double> levels = ladder.LevelResources();
  for (const TrialRecord& trial : run.history.trials()) {
    bool on_ladder = false;
    for (double r : levels) {
      if (std::abs(trial.job.resource - r) < 1e-9 ||
          std::abs(trial.job.resource - problem_->max_resource()) < 1e-9) {
        on_ladder = true;
      }
    }
    EXPECT_TRUE(on_ladder) << "resource " << trial.job.resource;
  }
}

TEST_P(MethodPropertyTest, CurveIsMonotone) {
  RunResult run = Run(4);
  double last = std::numeric_limits<double>::infinity();
  for (const CurvePoint& p : run.history.curve()) {
    EXPECT_LE(p.best_objective, last + 1e-12);
    last = p.best_objective;
  }
}

TEST_P(MethodPropertyTest, DeterministicGivenSeed) {
  RunResult a = Run(5);
  RunResult b = Run(5);
  ASSERT_EQ(a.history.num_trials(), b.history.num_trials());
  EXPECT_DOUBLE_EQ(a.history.best_objective(), b.history.best_objective());
}

TEST_P(MethodPropertyTest, PendingDrainsToInFlight) {
  Tuner* tuner = nullptr;
  RunResult run = Run(6, &tuner);
  (void)run;
  // At budget cut, only evaluations still on workers may remain pending.
  EXPECT_LE(tuner->store()->NumPending(), 4u);
}

TEST_P(MethodPropertyTest, PromotionsResumeFromLowerLevel) {
  RunResult run = Run(7);
  for (const TrialRecord& trial : run.history.trials()) {
    if (trial.job.resume_from > 0.0) {
      EXPECT_LT(trial.job.resume_from, trial.job.resource);
      EXPECT_GT(trial.job.level, 1);
    }
  }
}

TEST_P(MethodPropertyTest, TimestampsAreConsistent) {
  RunResult run = Run(8);
  for (const TrialRecord& trial : run.history.trials()) {
    EXPECT_GE(trial.start_time, 0.0);
    EXPECT_GT(trial.end_time, trial.start_time);
    EXPECT_GE(trial.worker, 0);
    EXPECT_LT(trial.worker, 4);
  }
}

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name = MethodName(info.param.method);
  name += "_";
  name += info.param.problem;
  std::string out;
  for (char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    CoreMethods, MethodPropertyTest,
    ::testing::Values(SweepCase{Method::kARandom, "counting"},
                      SweepCase{Method::kSha, "counting"},
                      SweepCase{Method::kAsha, "counting"},
                      SweepCase{Method::kDasha, "counting"},
                      SweepCase{Method::kHyperband, "counting"},
                      SweepCase{Method::kBohb, "counting"},
                      SweepCase{Method::kMfesHb, "counting"},
                      SweepCase{Method::kHyperTune, "counting"},
                      SweepCase{Method::kAsha, "nas"},
                      SweepCase{Method::kAHyperband, "nas"},
                      SweepCase{Method::kABohb, "nas"},
                      SweepCase{Method::kHyperTune, "nas"},
                      SweepCase{Method::kHyperTune, "xgb"},
                      SweepCase{Method::kABohb, "xgb"},
                      SweepCase{Method::kMfesHb, "xgb"}),
    CaseName);

}  // namespace
}  // namespace hypertune
