// Crash-consistency proof for the write-ahead journal: for every scheduler
// (sync bracket, async bracket, batch BO) with fault injection off and on,
// a journaled run is snapshot-killed after *every* journal record, resumed
// with a freshly built identical configuration, and the resumed run must be
// bit-identical to the uninterrupted one — same RunResultDigest, same final
// journal byte stream. Torn tails, fingerprint mismatches, configuration
// divergence, and the store-recovery path are covered alongside.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/allocator/fidelity_weights.h"
#include "src/core/hyper_tune.h"
#include "src/core/run_recovery.h"
#include "src/core/tuner.h"
#include "src/obs/observability.h"
#include "src/optimizer/bo_sampler.h"
#include "src/optimizer/random_sampler.h"
#include "src/problems/counting_ones.h"
#include "src/runtime/journal.h"
#include "src/runtime/scheduler_contract.h"
#include "src/runtime/simulated_cluster.h"
#include "src/runtime/store_io.h"
#include "src/scheduler/async_bracket_scheduler.h"
#include "src/scheduler/batch_bo_scheduler.h"
#include "src/scheduler/sync_bracket_scheduler.h"

namespace hypertune {
namespace {

enum class Sched { kSync, kAsync, kBatchBo, kAsyncBo, kLearnedBo };

const char* SchedName(Sched which) {
  switch (which) {
    case Sched::kSync:
      return "sync";
    case Sched::kAsync:
      return "async";
    case Sched::kBatchBo:
      return "batch_bo";
    case Sched::kAsyncBo:
      return "async_bo";
    case Sched::kLearnedBo:
      return "learned_bo";
  }
  return "?";
}

/// One run's worth of freshly constructed tuning state. The problem owns
/// the configuration space the sampler and schedulers point into, so
/// everything lives together and a new RunSetup is a bit-exact clean slate.
struct RunSetup {
  CountingOnes problem;
  std::unique_ptr<MeasurementStore> store;
  std::unique_ptr<Sampler> sampler;
  std::unique_ptr<FidelityWeights> weights;  // kLearnedBo only
  std::unique_ptr<SchedulerInterface> scheduler;
};

ResourceLadder TestLadder() {
  ResourceLadder ladder;
  ladder.eta = 3.0;
  ladder.num_levels = 3;
  ladder.max_resource = 729.0;
  return ladder;
}

std::unique_ptr<RunSetup> MakeSetup(Sched which, uint64_t sampler_seed = 17) {
  auto setup = std::make_unique<RunSetup>();
  const int levels = which == Sched::kBatchBo ? 1 : 3;
  setup->store = std::make_unique<MeasurementStore>(levels);
  if (which == Sched::kAsyncBo || which == Sched::kLearnedBo) {
    // Model-based sampler: its RNG snapshots and its surrogate cache refits
    // from the restored store, so BO-backed schedulers checkpoint too.
    BoSamplerOptions bo;
    bo.seed = sampler_seed;
    setup->sampler = std::make_unique<BoSampler>(&setup->problem.space(),
                                                 setup->store.get(), bo);
  } else {
    setup->sampler = std::make_unique<RandomSampler>(
        &setup->problem.space(), setup->store.get(), sampler_seed);
  }
  switch (which) {
    case Sched::kSync: {
      BracketSchedulerOptions options;
      options.ladder = TestLadder();
      options.selector.policy = BracketPolicy::kRoundRobin;
      setup->scheduler = std::make_unique<SyncBracketScheduler>(
          &setup->problem.space(), setup->store.get(), setup->sampler.get(),
          nullptr, options);
      break;
    }
    case Sched::kAsync:
    case Sched::kAsyncBo: {
      BracketSchedulerOptions options;
      options.ladder = TestLadder();
      options.selector.policy = BracketPolicy::kRoundRobin;
      options.delayed_promotion = true;
      setup->scheduler = std::make_unique<AsyncBracketScheduler>(
          &setup->problem.space(), setup->store.get(), setup->sampler.get(),
          nullptr, options);
      break;
    }
    case Sched::kLearnedBo: {
      // The facade's "Hyper-Tune w/o MFES" shape: learned bracket selection
      // backed by FidelityWeights, whose refresh-lagged theta cache must
      // travel inside checkpoints for the fast path to stay bit-exact.
      FidelityWeightsOptions weight_options;
      weight_options.seed = sampler_seed + 0xF1DEULL;
      setup->weights = std::make_unique<FidelityWeights>(
          &setup->problem.space(), weight_options);
      BracketSchedulerOptions options;
      options.ladder = TestLadder();
      options.selector.policy = BracketPolicy::kLearned;
      options.selector.seed = sampler_seed + 0x5E1ECULL;
      options.delayed_promotion = true;
      setup->scheduler = std::make_unique<AsyncBracketScheduler>(
          &setup->problem.space(), setup->store.get(), setup->sampler.get(),
          setup->weights.get(), options);
      break;
    }
    case Sched::kBatchBo: {
      BatchBoSchedulerOptions options;
      options.synchronous = true;
      options.batch_size = 4;
      options.resource = 729.0;
      options.level = 1;
      setup->scheduler = std::make_unique<BatchBoScheduler>(
          setup->store.get(), setup->sampler.get(), options);
      break;
    }
  }
  return setup;
}

ClusterOptions MatrixCluster(bool with_faults) {
  ClusterOptions options;
  options.num_workers = 4;
  options.time_budget_seconds = 2500.0;
  options.seed = 42;
  options.straggler_sigma = with_faults ? 0.8 : 0.4;
  if (with_faults) {
    options.faults.crash_probability = 0.05;
    options.faults.timeout_seconds = 2000.0;
    options.faults.max_retries = 2;
    options.faults.retry_backoff_seconds = 5.0;
    options.faults.retry_jitter = 0.25;
    options.worker_faults.mttf_seconds = 800.0;
    options.worker_faults.mttr_seconds = 150.0;
    options.worker_faults.permanent_death_probability = 0.1;
    options.worker_faults.quarantine_failures = 2;
    options.worker_faults.quarantine_seconds = 100.0;
    options.speculation.speculation_factor = 1.3;
    options.speculation.min_samples = 3;
  }
  return options;
}

/// A short checkpoint interval so the matrix also kills and resumes across
/// kCheckpoint records (default 64 would rarely fire in these short runs).
JournalOptions TestJournalOptions() {
  JournalOptions options;
  options.checkpoint_interval = 8;
  return options;
}

struct JournaledRun {
  RunResult result;
  uint64_t digest = 0;
  std::string journal_bytes;
};

JournaledRun RunToCompletion(Sched which, const ClusterOptions& options,
                             JournalOptions journal_options =
                                 TestJournalOptions()) {
  std::unique_ptr<RunSetup> setup = MakeSetup(which);
  std::unique_ptr<RunJournal> journal = RunJournal::CreateInMemory(
      ClusterFingerprint(options), journal_options);
  ClusterOptions journaled = options;
  journaled.journal = journal.get();
  SimulatedCluster cluster(journaled);
  JournaledRun run;
  run.result = cluster.Run(setup->scheduler.get(), setup->problem);
  EXPECT_TRUE(journal->ok()) << journal->status().ToString();
  run.digest = RunResultDigest(run.result);
  run.journal_bytes = journal->bytes();
  return run;
}

/// Byte offset of the end of record `k` (1-based count of whole records).
std::vector<size_t> RecordBoundaries(const std::string& journal_bytes) {
  RecordScan scan = ScanRecords(journal_bytes);
  EXPECT_TRUE(scan.tail.ok());
  std::vector<size_t> ends;
  size_t offset = 0;
  for (const std::string& record : scan.records) {
    offset += 8 + record.size();
    ends.push_back(offset);
  }
  return ends;
}

TEST(JournalRecoveryTest, CrashPointMatrix) {
  for (Sched which : {Sched::kSync, Sched::kAsync, Sched::kBatchBo}) {
    for (bool with_faults : {false, true}) {
      SCOPED_TRACE(std::string(SchedName(which)) +
                   (with_faults ? "+faults" : ""));
      const ClusterOptions options = MatrixCluster(with_faults);
      const JournaledRun golden = RunToCompletion(which, options);
      ASSERT_FALSE(golden.result.history.trials().empty());
      if (with_faults) {
        // The matrix is only meaningful if the fault half actually
        // exercised the fault record types.
        EXPECT_GT(golden.result.failed_attempts, 0);
        EXPECT_GT(golden.result.worker_deaths, 0);
      }

      const std::vector<size_t> ends = RecordBoundaries(golden.journal_bytes);
      ASSERT_GT(ends.size(), 2u);
      // Kill after every journal record — from "header only" (a crash
      // before any work) through "complete journal" (a crash after the
      // run finished) — and resume each prefix to completion.
      for (size_t k = 1; k <= ends.size(); ++k) {
        const std::string prefix = golden.journal_bytes.substr(0, ends[k - 1]);
        std::unique_ptr<RunSetup> setup = MakeSetup(which);
        std::string final_journal;
        Result<RunResult> resumed = ResumeRunFromBytes(
            prefix, options, setup->scheduler.get(), setup->problem,
            TestJournalOptions(), &final_journal);
        ASSERT_TRUE(resumed.ok())
            << "kill after record " << k << ": " << resumed.status().ToString();
        EXPECT_EQ(RunResultDigest(*resumed), golden.digest)
            << "kill after record " << k;
        EXPECT_EQ(final_journal, golden.journal_bytes)
            << "kill after record " << k;
      }
    }
  }
}

/// Loaded-record indexes (and byte extents) of every kCheckpoint record.
struct CheckpointSite {
  size_t record_index = 0;  // index into ScanRecords().records
  size_t begin = 0;         // byte offset of the record's frame
  size_t end = 0;           // one past the frame's last byte
};

std::vector<CheckpointSite> CheckpointSites(const std::string& journal_bytes) {
  RecordScan scan = ScanRecords(journal_bytes);
  std::vector<CheckpointSite> sites;
  size_t offset = 0;
  for (size_t i = 0; i < scan.records.size(); ++i) {
    const size_t frame = 8 + scan.records[i].size();
    JournalRecord type;
    if (JournalRecordTypeOf(scan.records[i], &type).ok() &&
        type == JournalRecord::kCheckpoint) {
      sites.push_back({i, offset, offset + frame});
    }
    offset += frame;
  }
  return sites;
}

TEST(JournalRecoveryTest, CheckpointFastPathMatchesFullReplayAtEveryCrashPoint) {
  // The acceptance matrix for the fast path: kill the driver after every
  // journal record and resume twice — once forced onto full replay, once
  // with the checkpoint fast path armed — and both must reproduce the
  // golden digest and the golden journal bytes. The fast path must also
  // actually engage (checkpoint restores > 0) once prefixes contain
  // checkpoints, or this test would pass vacuously. kAsyncBo runs the
  // matrix with a model-based sampler, so Restore also rebuilds a
  // surrogate-backed sampler mid-trajectory; kLearnedBo adds learned
  // bracket selection, so the FidelityWeights theta cache rides along too.
  for (Sched which : {Sched::kSync, Sched::kAsync, Sched::kBatchBo,
                      Sched::kAsyncBo, Sched::kLearnedBo}) {
    for (bool with_faults : {false, true}) {
      SCOPED_TRACE(std::string(SchedName(which)) +
                   (with_faults ? "+faults" : ""));
      const ClusterOptions options = MatrixCluster(with_faults);
      // Checkpoint every 2 completions so even the shortest configuration
      // (batch BO under faults) puts checkpoints in most kill prefixes.
      JournalOptions journal_options = TestJournalOptions();
      journal_options.checkpoint_interval = 2;
      const JournaledRun golden =
          RunToCompletion(which, options, journal_options);
      const std::vector<size_t> ends = RecordBoundaries(golden.journal_bytes);
      ASSERT_GT(ends.size(), 2u);
      ASSERT_FALSE(CheckpointSites(golden.journal_bytes).empty())
          << "golden run wrote no checkpoints; shrink checkpoint_interval";

      int64_t engagements = 0;
      for (size_t k = 1; k <= ends.size(); ++k) {
        const std::string prefix = golden.journal_bytes.substr(0, ends[k - 1]);

        std::unique_ptr<RunSetup> slow_setup = MakeSetup(which);
        ResumeOptions slow;
        slow.store = slow_setup->store.get();
        slow.use_checkpoint_fast_path = false;
        std::string slow_journal;
        Result<RunResult> replayed = ResumeRunFromBytes(
            prefix, options, slow_setup->scheduler.get(), slow_setup->problem,
            journal_options, &slow_journal, slow);
        ASSERT_TRUE(replayed.ok())
            << "kill after record " << k << ": "
            << replayed.status().ToString();

        Observability sink;
        ClusterOptions observed = options;
        observed.obs.sink = &sink;
        std::unique_ptr<RunSetup> fast_setup = MakeSetup(which);
        ResumeOptions fast;
        fast.store = fast_setup->store.get();
        std::string fast_journal;
        Result<RunResult> resumed = ResumeRunFromBytes(
            prefix, observed, fast_setup->scheduler.get(),
            fast_setup->problem, journal_options, &fast_journal, fast);
        ASSERT_TRUE(resumed.ok())
            << "kill after record " << k << ": " << resumed.status().ToString();

        EXPECT_EQ(RunResultDigest(*replayed), golden.digest)
            << "full replay, kill after record " << k;
        EXPECT_EQ(RunResultDigest(*resumed), golden.digest)
            << "fast path, kill after record " << k;
        EXPECT_EQ(slow_journal, golden.journal_bytes)
            << "full replay, kill after record " << k;
        EXPECT_EQ(fast_journal, golden.journal_bytes)
            << "fast path, kill after record " << k;
        MetricsSnapshot metrics = sink.metrics.Snapshot();
        engagements += metrics.counters["journal.checkpoint_restored"];
      }
      EXPECT_GT(engagements, 0);
    }
  }
}

TEST(JournalRecoveryTest, FastPathFallsBackAcrossTornCheckpoint) {
  // Kill the driver mid-checkpoint-write: the journal ends with a partial
  // kCheckpoint frame. The CRC scan drops the torn record, and the fast
  // path restores the *previous* checkpoint instead — the resumed run is
  // still bit-identical to the uninterrupted one.
  const ClusterOptions options = MatrixCluster(/*with_faults=*/false);
  const JournaledRun golden = RunToCompletion(Sched::kSync, options);
  const std::vector<CheckpointSite> sites =
      CheckpointSites(golden.journal_bytes);
  ASSERT_GE(sites.size(), 2u)
      << "need two checkpoints to prove the fallback; shrink the interval";
  const CheckpointSite& last = sites.back();
  // A clean prefix plus part of the final checkpoint's frame (header and a
  // slice of the snapshot — the write the crash interrupted).
  const std::string torn =
      golden.journal_bytes.substr(0, last.begin + (last.end - last.begin) / 2);

  Observability sink;
  ClusterOptions observed = options;
  observed.obs.sink = &sink;
  std::unique_ptr<RunSetup> setup = MakeSetup(Sched::kSync);
  ResumeOptions resume;
  resume.store = setup->store.get();
  std::string final_journal;
  Result<RunResult> resumed =
      ResumeRunFromBytes(torn, observed, setup->scheduler.get(),
                         setup->problem, TestJournalOptions(), &final_journal,
                         resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(RunResultDigest(*resumed), golden.digest);
  EXPECT_EQ(final_journal, golden.journal_bytes);
  MetricsSnapshot metrics = sink.metrics.Snapshot();
  EXPECT_EQ(metrics.counters["journal.checkpoint_restored"], 1);
  EXPECT_EQ(metrics.counters["journal.torn_tail_records"], 1);
}

/// Rewrites the checkpoint at `site` so its embedded snapshot is the empty
/// string: the frame stays CRC-valid, but Restore() underflows immediately.
std::string CorruptCheckpointSnapshot(const std::string& journal_bytes,
                                      const CheckpointSite& site) {
  RecordScan scan = ScanRecords(journal_bytes);
  CheckpointRecord rec;
  EXPECT_TRUE(
      DecodeCheckpointRecord(scan.records[site.record_index], &rec).ok());
  WireEncoder payload;
  payload.PutU8(static_cast<uint8_t>(JournalRecord::kCheckpoint));
  payload.PutF64(rec.now);
  payload.PutI64(rec.completions);
  payload.PutString("");
  std::string corrupt = journal_bytes.substr(0, site.begin);
  AppendRecord(payload.Release(), &corrupt);
  corrupt.append(journal_bytes.substr(site.end));
  return corrupt;
}

TEST(JournalRecoveryTest, FastPathEchoesCorruptPrefixCheckpointVerbatim) {
  // A CRC-valid checkpoint whose snapshot rotted sits *before* the newest
  // (healthy) one. The fast path never decodes prefix checkpoints — it
  // echoes their stored bytes back through the verify compare — so resume
  // succeeds bit-identically. Full replay regenerates the true snapshot at
  // that record and rightly reports divergence: the fast path strictly
  // extends the set of journals that remain resumable.
  const ClusterOptions options = MatrixCluster(/*with_faults=*/false);
  const JournaledRun golden = RunToCompletion(Sched::kSync, options);
  const std::vector<CheckpointSite> sites =
      CheckpointSites(golden.journal_bytes);
  ASSERT_GE(sites.size(), 2u)
      << "need two checkpoints; shrink the checkpoint interval";
  const std::string corrupt =
      CorruptCheckpointSnapshot(golden.journal_bytes, sites[sites.size() - 2]);

  {
    Observability sink;
    ClusterOptions observed = options;
    observed.obs.sink = &sink;
    std::unique_ptr<RunSetup> setup = MakeSetup(Sched::kSync);
    ResumeOptions resume;
    resume.store = setup->store.get();
    std::string final_journal;
    Result<RunResult> resumed = ResumeRunFromBytes(
        corrupt, observed, setup->scheduler.get(), setup->problem,
        TestJournalOptions(), &final_journal, resume);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_EQ(RunResultDigest(*resumed), golden.digest);
    EXPECT_EQ(final_journal, corrupt);  // the echo preserves the stream as-is
    MetricsSnapshot metrics = sink.metrics.Snapshot();
    EXPECT_EQ(metrics.counters["journal.checkpoint_restored"], 1);
  }
  {
    std::unique_ptr<RunSetup> setup = MakeSetup(Sched::kSync);
    ResumeOptions resume;
    resume.use_checkpoint_fast_path = false;
    Result<RunResult> replayed = ResumeRunFromBytes(
        corrupt, options, setup->scheduler.get(), setup->problem,
        TestJournalOptions(), nullptr, resume);
    ASSERT_FALSE(replayed.ok());
    EXPECT_EQ(replayed.status().code(), StatusCode::kDataLoss);
  }
}

TEST(JournalRecoveryTest, FastPathWalksBackPastCorruptNewestCheckpoint) {
  // When the *newest* checkpoint is the corrupt one, PlanFastPath's
  // Restore() attempt fails and it walks back to the previous checkpoint
  // (observable: the fast path still engages). The corrupt record now lies
  // in the live suffix, where nothing can regenerate its bytes — so resume
  // reports DataLoss at exactly that record. Divergence detection is
  // undiminished by the fast path.
  const ClusterOptions options = MatrixCluster(/*with_faults=*/false);
  const JournaledRun golden = RunToCompletion(Sched::kSync, options);
  const std::vector<CheckpointSite> sites =
      CheckpointSites(golden.journal_bytes);
  ASSERT_GE(sites.size(), 2u);
  const std::string corrupt =
      CorruptCheckpointSnapshot(golden.journal_bytes, sites.back());

  Observability sink;
  ClusterOptions observed = options;
  observed.obs.sink = &sink;
  std::unique_ptr<RunSetup> setup = MakeSetup(Sched::kSync);
  ResumeOptions resume;
  resume.store = setup->store.get();
  Result<RunResult> resumed = ResumeRunFromBytes(
      corrupt, observed, setup->scheduler.get(), setup->problem,
      TestJournalOptions(), nullptr, resume);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(resumed.status().message().find("diverged"), std::string::npos);
  MetricsSnapshot metrics = sink.metrics.Snapshot();
  EXPECT_EQ(metrics.counters["journal.checkpoint_restored"], 1);
}

TEST(JournalRecoveryTest, FsyncPolicyCountsBarriersAndSurvivesTruncation) {
  // Each policy issues its documented number of fsync barriers, and a crash
  // that tears the on-disk tail still resumes bit-identically under every
  // policy (the CRC scan truncates whatever suffix the page cache lost).
  const ClusterOptions options = MatrixCluster(/*with_faults=*/false);
  const JournaledRun golden = RunToCompletion(Sched::kSync, options);

  for (FsyncPolicy policy :
       {FsyncPolicy::kNone, FsyncPolicy::kOnCheckpoint,
        FsyncPolicy::kEveryRecord}) {
    SCOPED_TRACE(static_cast<int>(policy));
    JournalOptions journal_options = TestJournalOptions();
    journal_options.fsync_policy = policy;
    const std::string path = testing::TempDir() + "/journal_fsync_" +
                             std::to_string(static_cast<int>(policy)) +
                             ".journal";

    std::unique_ptr<RunSetup> setup = MakeSetup(Sched::kSync);
    Result<std::unique_ptr<RunJournal>> created = RunJournal::Create(
        path, ClusterFingerprint(options), journal_options);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    RunJournal* journal = created->get();
    ClusterOptions journaled = options;
    journaled.journal = journal;
    SimulatedCluster cluster(journaled);
    RunResult result = cluster.Run(setup->scheduler.get(), setup->problem);
    ASSERT_TRUE(journal->ok()) << journal->status().ToString();
    EXPECT_EQ(RunResultDigest(result), golden.digest);

    switch (policy) {
      case FsyncPolicy::kNone:
        EXPECT_EQ(journal->fsyncs(), 0);
        break;
      case FsyncPolicy::kOnCheckpoint:
        // One barrier per checkpoint plus one for the kRunEnd seal.
        ASSERT_GT(journal->checkpoints_emitted(), 0);
        EXPECT_EQ(journal->fsyncs(), journal->checkpoints_emitted() + 1);
        break;
      case FsyncPolicy::kEveryRecord:
        EXPECT_EQ(journal->fsyncs(), journal->records_appended());
        break;
    }
    created->reset();  // close the file

    // Crash: the tail the OS never persisted is gone and the last write is
    // torn. Resume must truncate and re-execute to the same digest.
    const std::vector<size_t> ends = RecordBoundaries(golden.journal_bytes);
    ASSERT_GT(ends.size(), 4u);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(golden.journal_bytes.data(),
                static_cast<std::streamsize>(ends[ends.size() / 2] + 3));
    }
    std::unique_ptr<RunSetup> resumed_setup = MakeSetup(Sched::kSync);
    Result<RunResult> resumed =
        ResumeRun(path, options, resumed_setup->scheduler.get(),
                  resumed_setup->problem, journal_options);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_EQ(RunResultDigest(*resumed), golden.digest);
    std::remove(path.c_str());
  }
}

TEST(JournalRecoveryTest, JournalingIsInvisibleToTheRun) {
  // Journal-on and journal-off runs of the same configuration must be
  // bit-identical: the hooks consume no randomness and perturb no decision.
  for (bool with_faults : {false, true}) {
    const ClusterOptions options = MatrixCluster(with_faults);
    const JournaledRun journaled = RunToCompletion(Sched::kSync, options);
    std::unique_ptr<RunSetup> setup = MakeSetup(Sched::kSync);
    SimulatedCluster cluster(options);
    RunResult bare = cluster.Run(setup->scheduler.get(), setup->problem);
    EXPECT_EQ(RunResultDigest(bare), journaled.digest);
  }
}

TEST(JournalRecoveryTest, TornTailIsDroppedCountedAndRecovered) {
  const ClusterOptions options = MatrixCluster(/*with_faults=*/false);
  const JournaledRun golden = RunToCompletion(Sched::kSync, options);
  const std::vector<size_t> ends = RecordBoundaries(golden.journal_bytes);
  ASSERT_GT(ends.size(), 3u);
  // Tear the journal mid-record: a clean prefix plus 5 bytes of the next
  // frame, as if the driver died inside a write.
  const size_t clean = ends[ends.size() - 3];
  std::string torn = golden.journal_bytes.substr(0, clean + 5);

  Observability sink;
  ObservabilityOptions obs;
  obs.sink = &sink;
  Result<std::unique_ptr<RunJournal>> reopened = RunJournal::ResumeFromBytes(
      torn, ClusterFingerprint(options), obs, TestJournalOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->records_dropped(), 1);
  EXPECT_EQ((*reopened)->bytes_dropped(), 5);
  MetricsSnapshot metrics = sink.metrics.Snapshot();
  EXPECT_EQ(metrics.counters["journal.torn_tail_records"], 1);
  EXPECT_EQ(metrics.counters["journal.torn_tail_bytes"], 5);
  bool saw_torn_tail_event = false;
  for (const TraceEvent& event : sink.trace.Snapshot()) {
    if (event.kind == TraceKind::kJournalTornTail) saw_torn_tail_event = true;
  }
  EXPECT_TRUE(saw_torn_tail_event);

  // The resumed run still reproduces the uninterrupted one exactly: the
  // torn suffix — and only the torn suffix — was lost, and re-execution
  // regenerates it.
  std::unique_ptr<RunSetup> setup = MakeSetup(Sched::kSync);
  std::string final_journal;
  Result<RunResult> resumed =
      ResumeRunFromBytes(torn, options, setup->scheduler.get(),
                         setup->problem, TestJournalOptions(), &final_journal);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(RunResultDigest(*resumed), golden.digest);
  EXPECT_EQ(final_journal, golden.journal_bytes);
}

TEST(JournalRecoveryTest, CorruptedLastRecordIsDroppedByCrc) {
  const ClusterOptions options = MatrixCluster(/*with_faults=*/false);
  const JournaledRun golden = RunToCompletion(Sched::kSync, options);
  // Flip one payload bit inside the final record; the CRC must reject it
  // and recovery must treat it exactly like a torn tail.
  std::string corrupt = golden.journal_bytes;
  corrupt[corrupt.size() - 1] = static_cast<char>(corrupt.back() ^ 0x10);
  std::unique_ptr<RunSetup> setup = MakeSetup(Sched::kSync);
  std::string final_journal;
  Result<RunResult> resumed = ResumeRunFromBytes(
      corrupt, options, setup->scheduler.get(), setup->problem,
      TestJournalOptions(), &final_journal);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(RunResultDigest(*resumed), golden.digest);
  EXPECT_EQ(final_journal, golden.journal_bytes);
}

TEST(JournalRecoveryTest, FingerprintMismatchIsRejected) {
  const ClusterOptions options = MatrixCluster(/*with_faults=*/false);
  const JournaledRun golden = RunToCompletion(Sched::kSync, options);
  ClusterOptions other = options;
  other.seed = 43;
  std::unique_ptr<RunSetup> setup = MakeSetup(Sched::kSync);
  Result<RunResult> resumed =
      ResumeRunFromBytes(golden.journal_bytes, other, setup->scheduler.get(),
                         setup->problem, TestJournalOptions());
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
}

TEST(JournalRecoveryTest, SchedulerDivergenceIsDataLoss) {
  // The cluster fingerprint cannot see inside the scheduler, so resuming
  // with a differently seeded sampler passes the header check — and must
  // then be caught by replay verification at the first diverging record.
  const ClusterOptions options = MatrixCluster(/*with_faults=*/false);
  const JournaledRun golden = RunToCompletion(Sched::kSync, options);
  std::unique_ptr<RunSetup> setup = MakeSetup(Sched::kSync, /*sampler_seed=*/18);
  Result<RunResult> resumed =
      ResumeRunFromBytes(golden.journal_bytes, options, setup->scheduler.get(),
                         setup->problem, TestJournalOptions());
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(resumed.status().message().find("diverged"), std::string::npos);
}

TEST(JournalRecoveryTest, MalformedJournalsAreRejectedCleanly) {
  const ClusterOptions options = MatrixCluster(/*with_faults=*/false);
  std::unique_ptr<RunSetup> setup = MakeSetup(Sched::kSync);
  {
    // Empty stream: nothing to resume from.
    Result<RunResult> resumed =
        ResumeRunFromBytes("", options, setup->scheduler.get(),
                           setup->problem, TestJournalOptions());
    ASSERT_FALSE(resumed.ok());
    EXPECT_EQ(resumed.status().code(), StatusCode::kDataLoss);
  }
  {
    // First record is not a run header.
    std::string stream;
    WireEncoder enc;
    enc.PutU8(static_cast<uint8_t>(JournalRecord::kAbandon));
    enc.PutF64(0.0);
    enc.PutI64(1);
    enc.PutI32(1);
    AppendRecord(enc.Release(), &stream);
    Result<std::unique_ptr<RunJournal>> journal = RunJournal::ResumeFromBytes(
        stream, ClusterFingerprint(options), {}, TestJournalOptions());
    ASSERT_FALSE(journal.ok());
    EXPECT_EQ(journal.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // A header from a future wire format version.
    std::string stream;
    WireEncoder enc;
    enc.PutU8(static_cast<uint8_t>(JournalRecord::kRunHeader));
    enc.PutU32(kWireFormatVersion + 1);
    enc.PutU64(ClusterFingerprint(options));
    AppendRecord(enc.Release(), &stream);
    Result<std::unique_ptr<RunJournal>> journal = RunJournal::ResumeFromBytes(
        stream, ClusterFingerprint(options), {}, TestJournalOptions());
    ASSERT_FALSE(journal.ok());
    EXPECT_EQ(journal.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(journal.status().message().find("newer wire format"),
              std::string::npos);
  }
}

TEST(JournalRecoveryTest, SchedulerSnapshotsRoundTripByteExactly) {
  // Snapshot → Restore into a fresh scheduler → Snapshot must reproduce
  // the exact bytes, and both schedulers must then mint the same next job.
  for (Sched which : {Sched::kSync, Sched::kAsync, Sched::kBatchBo}) {
    SCOPED_TRACE(SchedName(which));
    const ClusterOptions options = MatrixCluster(/*with_faults=*/false);
    std::unique_ptr<RunSetup> original = MakeSetup(which);
    SimulatedCluster cluster(options);
    (void)cluster.Run(original->scheduler.get(), original->problem);

    WireEncoder snapshot;
    ASSERT_TRUE(original->scheduler->Snapshot(&snapshot).ok());

    std::unique_ptr<RunSetup> restored = MakeSetup(which);
    // The measurement store is persisted separately (store_io); mirror it
    // by hand so sampler-visible state matches the snapshot's premise.
    for (int level = 1; level <= original->store->num_levels(); ++level) {
      for (const Measurement& m : original->store->group(level)) {
        restored->store->Add(level, m.config, m.objective);
      }
    }
    WireDecoder dec(snapshot.bytes());
    ASSERT_TRUE(restored->scheduler->Restore(&dec).ok());
    ASSERT_TRUE(dec.AtEnd());

    WireEncoder again;
    ASSERT_TRUE(restored->scheduler->Snapshot(&again).ok());
    EXPECT_EQ(snapshot.bytes(), again.bytes());

    std::optional<Job> next_original = original->scheduler->NextJob();
    std::optional<Job> next_restored = restored->scheduler->NextJob();
    ASSERT_EQ(next_original.has_value(), next_restored.has_value());
    if (next_original.has_value()) {
      EXPECT_EQ(next_original->job_id, next_restored->job_id);
      EXPECT_EQ(next_original->level, next_restored->level);
      ASSERT_EQ(next_original->config.size(), next_restored->config.size());
      for (size_t d = 0; d < next_original->config.size(); ++d) {
        EXPECT_EQ(next_original->config[d], next_restored->config[d]);
      }
    }
  }
}

TEST(JournalRecoveryTest, ContractCheckerRefusesRestoreButForwardsSnapshot) {
  std::unique_ptr<RunSetup> setup = MakeSetup(Sched::kSync);
  SchedulerContractChecker checker(setup->scheduler.get(), {});
  WireEncoder enc;
  EXPECT_TRUE(checker.Snapshot(&enc).ok());  // forwards to the wrapped one
  WireDecoder dec(enc.bytes());
  EXPECT_EQ(checker.Restore(&dec).code(), StatusCode::kFailedPrecondition);
}

TEST(JournalRecoveryTest, RecoverStoreFromJournalRebuildsMeasurements) {
  const ClusterOptions options = MatrixCluster(/*with_faults=*/false);
  const JournaledRun golden = RunToCompletion(Sched::kSync, options);
  Result<std::unique_ptr<RunJournal>> journal = RunJournal::ResumeFromBytes(
      golden.journal_bytes, ClusterFingerprint(options), {},
      TestJournalOptions());
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();

  MeasurementStore store(3);
  ASSERT_TRUE(RecoverStoreFromJournal(**journal, &store).ok());
  size_t recovered = 0;
  for (int level = 1; level <= store.num_levels(); ++level) {
    recovered += store.group(level).size();
  }
  EXPECT_EQ(recovered, golden.result.history.trials().size());

  // A one-level store cannot hold level-3 completions.
  MeasurementStore shallow(1);
  EXPECT_EQ(RecoverStoreFromJournal(**journal, &shallow).code(),
            StatusCode::kInvalidArgument);
}

TEST(JournalRecoveryTest, FileBackedResumeTruncatesTornTailAndAppends) {
  const ClusterOptions options = MatrixCluster(/*with_faults=*/false);
  const JournaledRun golden = RunToCompletion(Sched::kSync, options);
  const std::vector<size_t> ends = RecordBoundaries(golden.journal_bytes);
  ASSERT_GT(ends.size(), 4u);

  const std::string path =
      testing::TempDir() + "/journal_recovery_torn.journal";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const size_t clean = ends[ends.size() / 2];
    out.write(golden.journal_bytes.data(),
              static_cast<std::streamsize>(clean));
    out.write("\x01\x02\x03", 3);  // the write the crash interrupted
  }

  std::unique_ptr<RunSetup> setup = MakeSetup(Sched::kSync);
  Result<RunResult> resumed = ResumeRun(path, options, setup->scheduler.get(),
                                        setup->problem, TestJournalOptions());
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(RunResultDigest(*resumed), golden.digest);

  // The file was truncated past the torn bytes and extended to the full
  // journal, so a second crash-and-resume starts from a clean log.
  std::ifstream in(path, std::ios::binary);
  std::string on_disk((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(on_disk, golden.journal_bytes);
  std::remove(path.c_str());
}

TEST(JournalRecoveryTest, HyperTuneFacadeWritesAndResumesJournal) {
  CountingOnes problem;
  HyperTuneOptions options;
  options.num_workers = 4;
  options.time_budget_seconds = 400.0;
  options.max_brackets = 3;
  options.seed = 7;
  options.journal_path = testing::TempDir() + "/hyper_tune_run.journal";

  TuningOutcome full = HyperTune::Optimize(problem, options);
  ASSERT_FALSE(full.run.history.trials().empty());
  const uint64_t full_digest = RunResultDigest(full.run);

  // Kill the run partway: keep a journal prefix, then resume.
  std::string journal_bytes;
  {
    std::ifstream in(options.journal_path, std::ios::binary);
    journal_bytes.assign(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
  }
  const std::vector<size_t> ends = RecordBoundaries(journal_bytes);
  ASSERT_GT(ends.size(), 4u);
  {
    std::ofstream out(options.journal_path,
                      std::ios::binary | std::ios::trunc);
    out.write(journal_bytes.data(),
              static_cast<std::streamsize>(ends[ends.size() / 2]));
  }

  Result<TuningOutcome> resumed = HyperTune::Resume(problem, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(RunResultDigest(resumed->run), full_digest);
  EXPECT_EQ(resumed->best_objective, full.best_objective);
  std::remove(options.journal_path.c_str());

  HyperTuneOptions no_path = options;
  no_path.journal_path.clear();
  EXPECT_EQ(HyperTune::Resume(problem, no_path).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hypertune
