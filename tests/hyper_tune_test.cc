#include "src/core/hyper_tune.h"

#include <gtest/gtest.h>

#include "src/problems/counting_ones.h"
#include "src/problems/nas_bench.h"

namespace hypertune {
namespace {

TEST(HyperTuneTest, MethodForMapsToggles) {
  HyperTuneOptions options;
  EXPECT_EQ(HyperTune::MethodFor(options), Method::kHyperTune);
  options.bracket_selection = false;
  EXPECT_EQ(HyperTune::MethodFor(options), Method::kHyperTuneNoBs);
  options.bracket_selection = true;
  options.delayed_promotion = false;
  EXPECT_EQ(HyperTune::MethodFor(options), Method::kHyperTuneNoDasha);
  options.delayed_promotion = true;
  options.multi_fidelity_sampler = false;
  EXPECT_EQ(HyperTune::MethodFor(options), Method::kHyperTuneNoMfes);
  options.bracket_selection = false;
  EXPECT_EQ(HyperTune::MethodFor(options), Method::kAHyperband);
}

TEST(HyperTuneTest, OptimizeConvergesOnCountingOnes) {
  CountingOnesOptions problem_options;
  problem_options.num_categorical = 6;
  problem_options.num_continuous = 6;
  CountingOnes problem(problem_options);

  HyperTuneOptions options;
  options.num_workers = 8;
  options.time_budget_seconds = 3000.0;
  options.seed = 1;
  TuningOutcome outcome = HyperTune::Optimize(problem, options);

  EXPECT_GT(outcome.run.history.num_trials(), 50u);
  EXPECT_LT(outcome.best_objective, -0.8);  // optimum is -1
  EXPECT_FALSE(outcome.best_config.empty());
  EXPECT_GT(outcome.best_resource, 0.0);
  // Asynchronous scheduling keeps workers almost fully busy.
  EXPECT_GT(outcome.run.utilization, 0.95);
}

TEST(HyperTuneTest, OutcomeMatchesHistory) {
  CountingOnes problem;
  HyperTuneOptions options;
  options.num_workers = 4;
  options.time_budget_seconds = 500.0;
  options.seed = 2;
  TuningOutcome outcome = HyperTune::Optimize(problem, options);
  EXPECT_DOUBLE_EQ(outcome.best_objective,
                   outcome.run.history.best_objective());
}

TEST(HyperTuneTest, DeterministicGivenSeed) {
  CountingOnes problem;
  HyperTuneOptions options;
  options.num_workers = 4;
  options.time_budget_seconds = 400.0;
  options.seed = 3;
  TuningOutcome a = HyperTune::Optimize(problem, options);
  TuningOutcome b = HyperTune::Optimize(problem, options);
  EXPECT_DOUBLE_EQ(a.best_objective, b.best_objective);
  EXPECT_EQ(a.run.history.num_trials(), b.run.history.num_trials());
  EXPECT_TRUE(a.best_config == b.best_config);
}

TEST(HyperTuneTest, AblationTogglesStillWork) {
  SyntheticNasBench problem;
  for (auto [bs, dasha, mfes] :
       {std::tuple{false, true, true}, std::tuple{true, false, true},
        std::tuple{true, true, false}}) {
    HyperTuneOptions options;
    options.bracket_selection = bs;
    options.delayed_promotion = dasha;
    options.multi_fidelity_sampler = mfes;
    options.num_workers = 8;
    options.time_budget_seconds = 3.0 * 3600.0;
    options.seed = 4;
    TuningOutcome outcome = HyperTune::Optimize(problem, options);
    EXPECT_GT(outcome.run.history.num_trials(), 10u);
    EXPECT_LT(outcome.best_objective, 30.0);
  }
}

TEST(HyperTuneTest, StragglerNoiseDoesNotBreakAsync) {
  CountingOnes problem;
  HyperTuneOptions options;
  options.num_workers = 8;
  options.time_budget_seconds = 500.0;
  options.straggler_sigma = 0.5;
  options.seed = 5;
  TuningOutcome outcome = HyperTune::Optimize(problem, options);
  EXPECT_GT(outcome.run.history.num_trials(), 20u);
  EXPECT_GT(outcome.run.utilization, 0.9);  // async absorbs stragglers
}

TEST(HyperTuneTest, OptimizeOnThreadsProducesResults) {
  CountingOnesOptions problem_options;
  problem_options.max_samples = 27.0;
  CountingOnes problem(problem_options);
  HyperTuneOptions options;
  options.num_workers = 4;
  options.seed = 6;
  TuningOutcome outcome =
      HyperTune::OptimizeOnThreads(problem, options, /*wall=*/1.5);
  EXPECT_GT(outcome.run.history.num_trials(), 10u);
  EXPECT_LE(outcome.best_objective, 0.0);
}

}  // namespace
}  // namespace hypertune
