// Worker fault-domain suite: node death/recovery, permanent loss, orphan
// requeue, quarantine, and speculative straggler re-execution, across all
// three scheduler families and both cluster backends.
//
// The chaos scenarios are seeded — CI's chaos matrix re-runs this binary
// with HYPERTUNE_CHAOS_SEED=0/1/2 to shift the base seeds, so the same
// assertions must hold across several fault timelines, not just one lucky
// seed. Thread-backend assertions avoid wall-clock timing so they hold
// under ThreadSanitizer slowdown.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>

#include <gtest/gtest.h>

#include "src/core/tuner_factory.h"
#include "src/optimizer/random_sampler.h"
#include "src/problems/counting_ones.h"
#include "src/problems/nas_bench.h"
#include "src/runtime/simulated_cluster.h"
#include "src/runtime/thread_cluster.h"
#include "src/scheduler/async_bracket_scheduler.h"
#include "src/scheduler/batch_bo_scheduler.h"
#include "src/scheduler/sync_bracket_scheduler.h"

namespace hypertune {
namespace {

/// Base seed shifted by the CI chaos matrix (HYPERTUNE_CHAOS_SEED=0/1/2),
/// so every matrix leg exercises a different fault timeline.
uint64_t ChaosSeed(uint64_t base) {
  const char* env = std::getenv("HYPERTUNE_CHAOS_SEED");
  if (env == nullptr) return base;
  return base + std::strtoull(env, nullptr, 10);
}

enum class SchedulerKind { kSyncBracket, kAsyncBracket, kBatchBo };

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kSyncBracket:
      return "sync-bracket";
    case SchedulerKind::kAsyncBracket:
      return "async-bracket";
    case SchedulerKind::kBatchBo:
      return "batch-bo";
  }
  return "?";
}

/// Invariants every fault-enabled run must satisfy, independent of seed,
/// scheduler, and backend.
void CheckFaultAccounting(const RunResult& r) {
  EXPECT_EQ(r.failed_attempts, r.retries + r.failed_trials);
  EXPECT_EQ(r.failed_attempts,
            r.crash_attempts + r.timeout_attempts + r.worker_lost_attempts);
  EXPECT_EQ(r.history.num_failures(), static_cast<size_t>(r.failed_trials));
  // A worker-lost attempt never consumes the job's retry budget, so it can
  // never be the attempt that abandons a trial.
  EXPECT_EQ(r.history.num_failures_of_kind(FailureKind::kWorkerLost), 0u);
  EXPECT_LE(r.speculative_wins + r.speculative_losses,
            2 * r.speculative_attempts);
  int64_t speculative_trials = 0;
  for (const TrialRecord& t : r.history.trials()) {
    if (t.speculative) ++speculative_trials;
  }
  EXPECT_EQ(speculative_trials, r.speculative_wins);
  EXPECT_FALSE(std::isnan(r.utilization));
  EXPECT_GE(r.utilization, 0.0);
  EXPECT_LE(r.utilization, 1.0 + 1e-12);
  EXPECT_GE(r.wasted_seconds, 0.0);
  EXPECT_GE(r.worker_down_seconds, 0.0);
  EXPECT_GE(r.speculative_wasted_seconds, 0.0);
}

/// Full-chaos options: attempt crashes, frequent node deaths (30%
/// permanent), quarantine, stragglers, and speculation all at once.
ClusterOptions SimChaosOptions(uint64_t seed) {
  ClusterOptions options;
  options.num_workers = 8;
  options.time_budget_seconds = 6000.0;
  options.seed = seed;
  options.straggler_sigma = 0.8;
  options.faults.crash_probability = 0.05;
  options.faults.max_retries = 2;
  options.faults.retry_backoff_seconds = 5.0;
  options.faults.retry_jitter = 0.25;
  options.worker_faults.mttf_seconds = 1000.0;
  options.worker_faults.mttr_seconds = 150.0;
  options.worker_faults.permanent_death_probability = 0.3;
  options.worker_faults.quarantine_failures = 3;
  options.worker_faults.quarantine_seconds = 100.0;
  options.speculation.speculation_factor = 1.3;
  options.speculation.min_samples = 3;
  return options;
}

RunResult RunSimChaos(SchedulerKind kind, const ClusterOptions& options) {
  CountingOnes problem;
  SimulatedCluster cluster(options);
  switch (kind) {
    case SchedulerKind::kSyncBracket: {
      MeasurementStore store(3);
      RandomSampler sampler(&problem.space(), &store, 17);
      BracketSchedulerOptions scheduler_options;
      scheduler_options.ladder.eta = 3.0;
      scheduler_options.ladder.num_levels = 3;
      scheduler_options.ladder.max_resource = 729.0;
      scheduler_options.selector.policy = BracketPolicy::kRoundRobin;
      SyncBracketScheduler scheduler(&problem.space(), &store, &sampler,
                                     nullptr, scheduler_options);
      return cluster.Run(&scheduler, problem);
    }
    case SchedulerKind::kAsyncBracket: {
      MeasurementStore store(3);
      RandomSampler sampler(&problem.space(), &store, 17);
      BracketSchedulerOptions scheduler_options;
      scheduler_options.ladder.eta = 3.0;
      scheduler_options.ladder.num_levels = 3;
      scheduler_options.ladder.max_resource = 729.0;
      scheduler_options.selector.policy = BracketPolicy::kFixed;
      scheduler_options.selector.fixed_bracket = 1;
      AsyncBracketScheduler scheduler(&problem.space(), &store, &sampler,
                                      nullptr, scheduler_options);
      return cluster.Run(&scheduler, problem);
    }
    case SchedulerKind::kBatchBo: {
      MeasurementStore store(1);
      RandomSampler sampler(&problem.space(), &store, 17);
      BatchBoSchedulerOptions scheduler_options;
      scheduler_options.synchronous = true;
      scheduler_options.batch_size = 4;
      scheduler_options.resource = 729.0;
      scheduler_options.level = 1;
      BatchBoScheduler scheduler(&store, &sampler, scheduler_options);
      return cluster.Run(&scheduler, problem);
    }
  }
  return {};
}

TEST(WorkerFaultTest, SimulatedChaosSurvivesAllSchedulers) {
  // Well over 25% of the 8 workers die mid-run (MTTF is a sixth of the
  // budget), some permanently. Every scheduler family must ride through
  // it: the run terminates, completes work, and the books balance.
  for (SchedulerKind kind :
       {SchedulerKind::kSyncBracket, SchedulerKind::kAsyncBracket,
        SchedulerKind::kBatchBo}) {
    SCOPED_TRACE(SchedulerKindName(kind));
    RunResult result = RunSimChaos(kind, SimChaosOptions(ChaosSeed(101)));
    CheckFaultAccounting(result);
    EXPECT_GT(result.history.num_trials(), 10u);
    EXPECT_GE(result.worker_deaths, 2);  // >= 25% of 8 workers
    EXPECT_GE(result.workers_lost_permanently, 1);
    EXPECT_GT(result.worker_lost_attempts, 0);
    EXPECT_GT(result.worker_down_seconds, 0.0);
    EXPECT_LE(result.elapsed_seconds, 6000.0 + 1e-9);
  }
}

TEST(WorkerFaultTest, WorkerLostNeverConsumesRetryBudget) {
  // Zero retry budget and no job-level faults: with only worker deaths in
  // play, every orphaned attempt must be requeued for free. If a death
  // burned the budget, max_retries = 0 would abandon the job on the spot.
  ClusterOptions options;
  options.num_workers = 4;
  options.time_budget_seconds = 6000.0;
  options.seed = ChaosSeed(7);
  options.faults.max_retries = 0;
  options.worker_faults.mttf_seconds = 800.0;
  options.worker_faults.mttr_seconds = 100.0;
  options.worker_faults.permanent_death_probability = 0.0;
  RunResult result = RunSimChaos(SchedulerKind::kSyncBracket, options);
  CheckFaultAccounting(result);
  EXPECT_GT(result.worker_deaths, 0);
  EXPECT_GT(result.worker_lost_attempts, 0);
  EXPECT_EQ(result.failed_trials, 0);
  EXPECT_EQ(result.history.num_failures(), 0u);
  EXPECT_EQ(result.retries, result.worker_lost_attempts);
  EXPECT_EQ(result.crash_attempts, 0);
  EXPECT_EQ(result.timeout_attempts, 0);
}

uint64_t DigestRun(const RunResult& r) {
  uint64_t hash = 1469598103934665603ULL;  // FNV-1a
  auto mix = [&hash](uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ULL;
  };
  auto mix_double = [&mix](double d) {
    uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  for (const TrialRecord& t : r.history.trials()) {
    mix(static_cast<uint64_t>(t.job.job_id));
    mix(static_cast<uint64_t>(t.worker));
    mix(t.speculative ? 1u : 0u);
    mix_double(t.start_time);
    mix_double(t.end_time);
    mix_double(t.result.objective);
  }
  for (const TrialRecord& t : r.history.failures()) {
    mix(static_cast<uint64_t>(t.job.job_id));
    mix(static_cast<uint64_t>(t.failure_kind));
    mix_double(t.end_time);
  }
  mix(static_cast<uint64_t>(r.failed_attempts));
  mix(static_cast<uint64_t>(r.worker_deaths));
  mix(static_cast<uint64_t>(r.quarantines));
  mix(static_cast<uint64_t>(r.speculative_attempts));
  mix_double(r.worker_down_seconds);
  return hash;
}

TEST(WorkerFaultTest, ChaosReplayIsBitIdenticalAndSeedSensitive) {
  // Worker lifetimes, fault draws, and speculation decisions are all pure
  // functions of the run seed: replaying the same seed reproduces the
  // entire chaos timeline bit-for-bit; a different seed produces a
  // different one.
  ClusterOptions options = SimChaosOptions(ChaosSeed(55));
  RunResult first = RunSimChaos(SchedulerKind::kAsyncBracket, options);
  RunResult second = RunSimChaos(SchedulerKind::kAsyncBracket, options);
  EXPECT_EQ(DigestRun(first), DigestRun(second));
  EXPECT_EQ(first.history.num_trials(), second.history.num_trials());
  EXPECT_EQ(first.worker_deaths, second.worker_deaths);
  EXPECT_EQ(first.speculative_wins, second.speculative_wins);

  options.seed += 1;
  RunResult shifted = RunSimChaos(SchedulerKind::kAsyncBracket, options);
  EXPECT_NE(DigestRun(first), DigestRun(shifted));
}

TEST(WorkerFaultTest, QuarantineIsolatesRepeatOffenders) {
  // Every attempt crashes and the budget allows no retries, so each worker
  // racks up consecutive job-level failures and must cycle through
  // quarantine instead of hammering the queue. The run still terminates
  // (every job is abandoned through the scheduler contract).
  ClusterOptions options;
  options.num_workers = 4;
  options.time_budget_seconds = 6000.0;
  options.seed = ChaosSeed(3);
  options.faults.crash_probability = 1.0;
  options.faults.max_retries = 0;
  options.worker_faults.mttf_seconds = 1e9;  // deaths out of the picture
  options.worker_faults.quarantine_failures = 2;
  options.worker_faults.quarantine_seconds = 50.0;
  RunResult result = RunSimChaos(SchedulerKind::kSyncBracket, options);
  CheckFaultAccounting(result);
  EXPECT_EQ(result.history.num_trials(), 0u);
  EXPECT_GT(result.failed_trials, 0);
  EXPECT_GT(result.quarantines, 0);
  EXPECT_GT(result.worker_down_seconds, 0.0);
  EXPECT_EQ(result.worker_deaths, 0);
}

TEST(WorkerFaultTest, SpeculationFirstFinisherWins) {
  // Heavy straggler noise with no faults: duplicates launch against
  // overdue attempts, some duplicates beat their primary (wins show up as
  // speculative trials), and every resolved race retires exactly one
  // losing copy. Objectives are keyed on the configuration, so which copy
  // wins never changes the measured value — only the timestamps. The
  // synchronous scheduler is the interesting host: its barriers idle
  // workers, which is exactly the capacity speculation reclaims (an
  // async scheduler keeps all workers busy, so duplicates rarely find a
  // free slot).
  ClusterOptions options;
  options.num_workers = 8;
  options.time_budget_seconds = 6000.0;
  options.seed = ChaosSeed(23);
  options.straggler_sigma = 0.8;
  options.speculation.speculation_factor = 1.3;
  options.speculation.min_samples = 3;
  RunResult result = RunSimChaos(SchedulerKind::kSyncBracket, options);
  CheckFaultAccounting(result);
  EXPECT_GT(result.speculative_attempts, 0);
  EXPECT_GT(result.speculative_wins, 0);
  EXPECT_LE(result.speculative_losses, result.speculative_attempts);
  EXPECT_GT(result.speculative_wasted_seconds, 0.0);
  // No job-level faults: speculation alone must not fabricate failures.
  EXPECT_EQ(result.failed_attempts, 0);
  EXPECT_EQ(result.history.num_failures(), 0u);
  EXPECT_DOUBLE_EQ(result.wasted_seconds, 0.0);
}

TEST(WorkerFaultTest, AllWorkersLostPermanentlyStillTerminates) {
  // The pathological fault domain: every death is permanent and MTTF is a
  // small fraction of the budget, so the whole cluster is gone mid-run.
  // The run must drain cleanly instead of hanging on unreachable work.
  ClusterOptions options;
  options.num_workers = 4;
  options.time_budget_seconds = 6000.0;
  options.seed = ChaosSeed(13);
  options.worker_faults.mttf_seconds = 300.0;
  options.worker_faults.permanent_death_probability = 1.0;
  RunResult result = RunSimChaos(SchedulerKind::kAsyncBracket, options);
  CheckFaultAccounting(result);
  EXPECT_EQ(result.workers_lost_permanently, 4);
  EXPECT_EQ(result.worker_deaths, 4);
  EXPECT_LE(result.elapsed_seconds, 6000.0 + 1e-9);
}

TEST(WorkerFaultTest, NasBenchChaosDegradesGracefully) {
  // End-to-end tolerance bound on the paper's workload: a chaos run that
  // loses >= 25% of its workers (some permanently) must still land within
  // 10 validation-error points of the fault-free run on the same seed —
  // faults cost throughput, not correctness of what completes.
  SyntheticNasBench problem;
  TunerFactoryOptions factory;
  factory.method = Method::kAHyperband;
  factory.seed = ChaosSeed(1);

  ClusterOptions clean;
  clean.num_workers = 8;
  clean.time_budget_seconds = 6.0 * 3600.0;
  clean.seed = factory.seed;
  std::unique_ptr<Tuner> clean_tuner = CreateTuner(problem, factory);
  RunResult clean_run = clean_tuner->Run(problem, clean);

  ClusterOptions chaos = clean;
  chaos.faults.crash_probability = 0.05;
  chaos.faults.max_retries = 2;
  chaos.faults.retry_backoff_seconds = 60.0;
  chaos.worker_faults.mttf_seconds = clean.time_budget_seconds / 6.0;
  chaos.worker_faults.mttr_seconds = clean.time_budget_seconds / 40.0;
  chaos.worker_faults.permanent_death_probability = 0.3;
  chaos.worker_faults.quarantine_failures = 3;
  chaos.worker_faults.quarantine_seconds = 600.0;
  std::unique_ptr<Tuner> chaos_tuner = CreateTuner(problem, factory);
  RunResult chaos_run = chaos_tuner->Run(problem, chaos);

  CheckFaultAccounting(chaos_run);
  EXPECT_GE(chaos_run.worker_deaths, 2);  // >= 25% of 8 workers
  EXPECT_GE(chaos_run.workers_lost_permanently, 1);
  EXPECT_GT(chaos_run.history.num_trials(), 10u);
  EXPECT_LT(chaos_run.history.best_objective(),
            clean_run.history.best_objective() + 10.0);
}

TEST(WorkerFaultTest, ThreadChaosSurvivesWorkerDeaths) {
  // Real-thread backend under the full fault domain: node deaths (some
  // permanent), crashes, quarantine, and speculation at once. Assertions
  // stick to bookkeeping (not wall-clock timing) so they hold under TSan.
  CountingOnes problem;
  MeasurementStore store(3);
  RandomSampler sampler(&problem.space(), &store, 5);
  BracketSchedulerOptions scheduler_options;
  scheduler_options.ladder.eta = 3.0;
  scheduler_options.ladder.num_levels = 3;
  scheduler_options.ladder.max_resource = 27.0;
  scheduler_options.selector.policy = BracketPolicy::kFixed;
  scheduler_options.selector.fixed_bracket = 1;
  AsyncBracketScheduler scheduler(&problem.space(), &store, &sampler, nullptr,
                                  scheduler_options);

  ThreadClusterOptions options;
  options.num_workers = 8;
  options.time_budget_seconds = 2.0;
  options.seed = ChaosSeed(9);
  options.cost_sleep_scale = 1e-3;
  options.faults.crash_probability = 0.1;
  options.faults.max_retries = 1;
  options.faults.retry_backoff_seconds = 0.01;
  options.worker_faults.mttf_seconds = 0.3;
  options.worker_faults.mttr_seconds = 0.05;
  options.worker_faults.permanent_death_probability = 0.2;
  options.worker_faults.quarantine_failures = 3;
  options.worker_faults.quarantine_seconds = 0.05;
  options.speculation.speculation_factor = 2.0;
  options.speculation.min_samples = 3;
  ThreadCluster cluster(options);
  RunResult result = cluster.Run(&scheduler, problem);

  CheckFaultAccounting(result);
  EXPECT_GT(result.history.num_trials(), 0u);
  EXPECT_GT(result.worker_deaths, 0);
  EXPECT_GT(result.worker_down_seconds, 0.0);
}

TEST(WorkerFaultTest, ThreadAllWorkersDiePermanentlyShutsDownCleanly) {
  // Every worker thread dies permanently almost immediately; the run must
  // join all threads and return long before the (deliberately generous)
  // budget instead of spinning on a dead cluster.
  CountingOnes problem;
  MeasurementStore store(3);
  RandomSampler sampler(&problem.space(), &store, 5);
  BracketSchedulerOptions scheduler_options;
  scheduler_options.ladder.eta = 3.0;
  scheduler_options.ladder.num_levels = 3;
  scheduler_options.ladder.max_resource = 27.0;
  scheduler_options.selector.policy = BracketPolicy::kFixed;
  scheduler_options.selector.fixed_bracket = 1;
  AsyncBracketScheduler scheduler(&problem.space(), &store, &sampler, nullptr,
                                  scheduler_options);

  ThreadClusterOptions options;
  options.num_workers = 4;
  options.time_budget_seconds = 60.0;
  options.seed = ChaosSeed(31);
  options.cost_sleep_scale = 1e-3;
  options.worker_faults.mttf_seconds = 0.1;
  options.worker_faults.permanent_death_probability = 1.0;
  ThreadCluster cluster(options);
  RunResult result = cluster.Run(&scheduler, problem);

  CheckFaultAccounting(result);
  EXPECT_EQ(result.workers_lost_permanently, 4);
  EXPECT_EQ(result.worker_deaths, 4);
  // Even under TSan the cluster is gone within seconds, not the 60 s
  // budget (this is a liveness check, not a timing-sensitive one).
  EXPECT_LT(result.elapsed_seconds, 50.0);
}

}  // namespace
}  // namespace hypertune
