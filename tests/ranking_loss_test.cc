#include "src/allocator/ranking_loss.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/allocator/fidelity_weights.h"
#include "src/common/rng.h"
#include "src/surrogate/random_forest.h"

namespace hypertune {
namespace {

SurrogateFactory RfFactory(uint64_t seed) {
  return [seed]() -> std::unique_ptr<Surrogate> {
    RandomForestOptions options;
    options.seed = seed;
    return std::make_unique<RandomForest>(options);
  };
}

TEST(CountMisrankedPairsTest, PerfectRankingHasZeroLoss) {
  EXPECT_EQ(CountMisrankedPairs({1.0, 2.0, 3.0}, {10.0, 20.0, 30.0}), 0);
}

TEST(CountMisrankedPairsTest, ReversedRankingHasMaxLoss) {
  // All 6 ordered pairs with j != k are mis-ranked.
  EXPECT_EQ(CountMisrankedPairs({3.0, 2.0, 1.0}, {10.0, 20.0, 30.0}), 6);
}

TEST(CountMisrankedPairsTest, SingleSwapCountsTwice) {
  // Ordered-pair double counting: one swapped adjacent pair -> loss 2.
  EXPECT_EQ(CountMisrankedPairs({2.0, 1.0, 3.0}, {10.0, 20.0, 30.0}), 2);
}

TEST(CountMisrankedPairsTest, EmptyInputs) {
  EXPECT_EQ(CountMisrankedPairs({}, {}), 0);
}

TEST(CountMisrankedPairsOnSubsetTest, SubsetRestrictsPairs) {
  std::vector<double> pred = {3.0, 2.0, 1.0};
  std::vector<double> truth = {10.0, 20.0, 30.0};
  // Only indices {0, 1}: the pair (0, 1) is mis-ranked in both directions.
  EXPECT_EQ(CountMisrankedPairsOnSubset(pred, truth, {0, 1}), 2);
  // Repeated index contributes self-pairs, which never mis-rank.
  EXPECT_EQ(CountMisrankedPairsOnSubset(pred, truth, {0, 0}), 0);
}

TEST(FitAndPredictTest, LearnsRanking) {
  ConfigurationSpace space;
  ASSERT_TRUE(space.Add(Parameter::Float("x", 0.0, 1.0)).ok());
  std::vector<Measurement> fit_on;
  Rng rng(1);
  for (int i = 0; i < 80; ++i) {
    double v = rng.Uniform();
    fit_on.push_back({Configuration({v}), v});  // objective = x
  }
  std::vector<Measurement> eval_at;
  for (double v : {0.1, 0.5, 0.9}) {
    eval_at.push_back({Configuration({v}), v});
  }
  std::vector<double> pred = FitAndPredict(space, fit_on, eval_at,
                                           RfFactory(2));
  ASSERT_EQ(pred.size(), 3u);
  EXPECT_LT(pred[0], pred[1]);
  EXPECT_LT(pred[1], pred[2]);
}

TEST(FitAndPredictTest, TooLittleDataReturnsEmpty) {
  ConfigurationSpace space;
  ASSERT_TRUE(space.Add(Parameter::Float("x", 0.0, 1.0)).ok());
  std::vector<Measurement> one = {{Configuration({0.5}), 1.0}};
  std::vector<Measurement> eval_at = {{Configuration({0.1}), 0.1}};
  EXPECT_TRUE(FitAndPredict(space, one, eval_at, RfFactory(3)).empty());
  EXPECT_TRUE(FitAndPredict(space, eval_at, {}, RfFactory(3)).empty());
}

TEST(CrossValidationPredictionsTest, ShapeAndSanity) {
  ConfigurationSpace space;
  ASSERT_TRUE(space.Add(Parameter::Float("x", 0.0, 1.0)).ok());
  std::vector<Measurement> data;
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    double v = rng.Uniform();
    data.push_back({Configuration({v}), v});
  }
  std::vector<double> pred =
      CrossValidationPredictions(space, data, 5, RfFactory(5), 6);
  ASSERT_EQ(pred.size(), data.size());
  // Held-out predictions should still broadly rank the data correctly.
  std::vector<double> truths;
  for (const Measurement& m : data) truths.push_back(m.objective);
  int64_t loss = CountMisrankedPairs(pred, truths);
  int64_t max_loss = static_cast<int64_t>(data.size() * data.size());
  EXPECT_LT(loss, max_loss / 4);
}

TEST(CrossValidationPredictionsTest, TooFewPointsReturnsEmpty) {
  ConfigurationSpace space;
  ASSERT_TRUE(space.Add(Parameter::Float("x", 0.0, 1.0)).ok());
  std::vector<Measurement> data = {{Configuration({0.1}), 0.1},
                                   {Configuration({0.9}), 0.9}};
  EXPECT_TRUE(
      CrossValidationPredictions(space, data, 5, RfFactory(7), 8).empty());
}

class FidelityWeightsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(space_.Add(Parameter::Float("x", 0.0, 1.0)).ok());
    ASSERT_TRUE(space_.Add(Parameter::Float("y", 0.0, 1.0)).ok());
  }

  double Truth(const Configuration& c) const {
    return (c[0] - 0.4) * (c[0] - 0.4) + (c[1] - 0.6) * (c[1] - 0.6);
  }

  ConfigurationSpace space_;
};

TEST_F(FidelityWeightsTest, FallbackBeforeHighFidelityData) {
  MeasurementStore store(3);
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    Configuration c = space_.Sample(&rng);
    store.Add(1, c, Truth(c));
  }
  FidelityWeightsOptions options;
  options.seed = 10;
  FidelityWeights weights(&space_, options);
  std::vector<double> theta = weights.ComputeTheta(store);
  ASSERT_EQ(theta.size(), 3u);
  EXPECT_FALSE(weights.used_ranking_loss());
  // All mass on level 1 (the only level with data).
  EXPECT_NEAR(theta[0], 1.0, 1e-9);
  EXPECT_NEAR(theta[1], 0.0, 1e-9);
}

TEST_F(FidelityWeightsTest, InformativeLowFidelityEarnsWeight) {
  MeasurementStore store(2);
  Rng rng(11);
  // Level 1 is a faithful (noise-free) proxy of the truth; D_K is smaller.
  for (int i = 0; i < 60; ++i) {
    Configuration c = space_.Sample(&rng);
    store.Add(1, c, Truth(c));
  }
  for (int i = 0; i < 15; ++i) {
    Configuration c = space_.Sample(&rng);
    store.Add(2, c, Truth(c));
  }
  FidelityWeightsOptions options;
  options.seed = 12;
  FidelityWeights weights(&space_, options);
  std::vector<double> theta = weights.ComputeTheta(store);
  ASSERT_EQ(theta.size(), 2u);
  EXPECT_TRUE(weights.used_ranking_loss());
  EXPECT_GT(theta[0], 0.2);  // the faithful low fidelity earns real weight
}

TEST_F(FidelityWeightsTest, MisleadingLowFidelityLosesWeight) {
  MeasurementStore store(2);
  Rng rng(13);
  // Level 1 is anti-correlated with the truth; level 2 is the truth.
  for (int i = 0; i < 60; ++i) {
    Configuration c = space_.Sample(&rng);
    store.Add(1, c, -Truth(c));
  }
  for (int i = 0; i < 30; ++i) {
    Configuration c = space_.Sample(&rng);
    store.Add(2, c, Truth(c));
  }
  FidelityWeightsOptions options;
  options.seed = 14;
  FidelityWeights weights(&space_, options);
  std::vector<double> theta = weights.ComputeTheta(store);
  ASSERT_EQ(theta.size(), 2u);
  EXPECT_TRUE(weights.used_ranking_loss());
  EXPECT_LT(theta[0], 0.25);
  EXPECT_GT(theta[1], 0.75);
}

TEST_F(FidelityWeightsTest, ThetaSumsToOneAndCaches) {
  MeasurementStore store(2);
  Rng rng(15);
  for (int i = 0; i < 40; ++i) {
    Configuration c = space_.Sample(&rng);
    store.Add(1 + i % 2, c, Truth(c));
  }
  FidelityWeightsOptions options;
  options.seed = 16;
  FidelityWeights weights(&space_, options);
  const std::vector<double>& theta1 = weights.ComputeTheta(store);
  double sum = 0.0;
  for (double t : theta1) sum += t;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Unchanged store: the same cached object is returned.
  const std::vector<double>& theta2 = weights.ComputeTheta(store);
  EXPECT_EQ(&theta1, &theta2);
}

}  // namespace
}  // namespace hypertune
