// Deterministic chaos suite for the fault-injection runtime: property tests
// over a seed sweep on the simulated cluster (every scheduler x crash
// probability), same-seed replay of the full failure timeline, the
// all-jobs-in-a-rung-fail scenario that used to be a sync-barrier deadlock,
// and scripted barrier-draining checks against SyncBracketScheduler.
#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/optimizer/random_sampler.h"
#include "src/problems/counting_ones.h"
#include "src/runtime/fault_injector.h"
#include "src/runtime/simulated_cluster.h"
#include "src/scheduler/async_bracket_scheduler.h"
#include "src/scheduler/batch_bo_scheduler.h"
#include "src/scheduler/sync_bracket_scheduler.h"

namespace hypertune {
namespace {

enum class SchedKind { kSync, kAsync, kBatchBo };

constexpr SchedKind kAllKinds[] = {SchedKind::kSync, SchedKind::kAsync,
                                   SchedKind::kBatchBo};

// Small ladder (resources 3/9/27 on CountingOnes, cost = resource seconds)
// so a 400-virtual-second run covers several brackets cheaply.
ResourceLadder ChaosLadder() {
  ResourceLadder ladder;
  ladder.eta = 3.0;
  ladder.num_levels = 3;
  ladder.max_resource = 27.0;
  return ladder;
}

RunResult RunChaos(SchedKind kind, uint64_t seed, const FaultOptions& faults,
                   double budget = 400.0) {
  CountingOnes problem;
  ClusterOptions cluster_options;
  cluster_options.num_workers = 4;
  cluster_options.time_budget_seconds = budget;
  cluster_options.seed = seed;
  cluster_options.faults = faults;
  SimulatedCluster cluster(cluster_options);

  if (kind == SchedKind::kBatchBo) {
    MeasurementStore store(1);
    RandomSampler sampler(&problem.space(), &store, seed + 101);
    BatchBoSchedulerOptions options;
    options.synchronous = true;
    options.batch_size = 4;
    options.resource = 27.0;
    options.level = 1;
    BatchBoScheduler scheduler(&store, &sampler, options);
    return cluster.Run(&scheduler, problem);
  }

  MeasurementStore store(3);
  RandomSampler sampler(&problem.space(), &store, seed + 101);
  BracketSchedulerOptions options;
  options.ladder = ChaosLadder();
  options.selector.policy = BracketPolicy::kRoundRobin;
  if (kind == SchedKind::kSync) {
    SyncBracketScheduler scheduler(&problem.space(), &store, &sampler, nullptr,
                                   options);
    return cluster.Run(&scheduler, problem);
  }
  options.delayed_promotion = true;
  AsyncBracketScheduler scheduler(&problem.space(), &store, &sampler, nullptr,
                                  options);
  return cluster.Run(&scheduler, problem);
}

/// The invariants every chaos run must satisfy, regardless of scheduler,
/// seed, or fault intensity.
void CheckInvariants(const RunResult& result, const FaultOptions& faults,
                     double budget) {
  // No job_id ever completes twice, and no job_id is both completed and
  // abandoned: retries reuse the id, so this catches double-delivery.
  std::set<int64_t> ids;
  for (const TrialRecord& t : result.history.trials()) {
    EXPECT_TRUE(ids.insert(t.job.job_id).second)
        << "duplicate completion for job " << t.job.job_id;
  }
  for (const TrialRecord& t : result.history.failures()) {
    EXPECT_TRUE(ids.insert(t.job.job_id).second)
        << "job " << t.job.job_id << " both completed and abandoned";
  }

  // The virtual clock is monotone: records appear in event order, every
  // record has non-negative duration, and nothing lands past the budget.
  double last = 0.0;
  for (const TrialRecord& t : result.history.trials()) {
    EXPECT_LE(t.start_time, t.end_time);
    EXPECT_GE(t.end_time, last);
    EXPECT_LE(t.end_time, budget + 1e-9);
    last = t.end_time;
  }
  last = 0.0;
  for (const TrialRecord& t : result.history.failures()) {
    EXPECT_LE(t.start_time, t.end_time);
    EXPECT_GE(t.end_time, last);
    EXPECT_LE(t.end_time, budget + 1e-9);
    last = t.end_time;
  }
  EXPECT_LE(result.elapsed_seconds, budget + 1e-9);

  // Attempt numbers respect the retry cap.
  for (const TrialRecord& t : result.history.trials()) {
    EXPECT_GE(t.job.attempt, 1);
    EXPECT_LE(t.job.attempt, faults.max_retries + 1);
  }
  for (const TrialRecord& t : result.history.failures()) {
    EXPECT_GE(t.job.attempt, 1);
    EXPECT_LE(t.job.attempt, faults.max_retries + 1);
  }

  // Failure accounting is closed: every failed attempt was either granted a
  // retry or ended its trial, and abandoned trials match the history.
  EXPECT_EQ(result.failed_attempts, result.retries + result.failed_trials);
  EXPECT_EQ(result.failed_trials,
            static_cast<int64_t>(result.history.num_failures()));
  EXPECT_LE(result.wasted_seconds, result.busy_seconds + 1e-9);

  EXPECT_FALSE(std::isnan(result.utilization));
  EXPECT_GE(result.utilization, 0.0);
  EXPECT_LE(result.utilization, 1.0 + 1e-12);

  if (faults.crash_probability <= 0.0 && faults.timeout_seconds <= 0.0) {
    EXPECT_EQ(result.failed_attempts, 0);
    EXPECT_EQ(result.retries, 0);
    EXPECT_EQ(result.failed_trials, 0);
    EXPECT_DOUBLE_EQ(result.wasted_seconds, 0.0);
  }
}

void ExpectIdenticalRuns(const RunResult& a, const RunResult& b) {
  auto expect_same_records = [](const TrialList& x, const TrialList& y) {
    ASSERT_EQ(x.size(), y.size());
    for (size_t i = 0; i < x.size(); ++i) {
      const TrialRecord rx = x[i];
      const TrialRecord ry = y[i];
      EXPECT_EQ(rx.job.job_id, ry.job.job_id);
      EXPECT_EQ(rx.job.attempt, ry.job.attempt);
      EXPECT_EQ(rx.job.level, ry.job.level);
      EXPECT_EQ(rx.worker, ry.worker);
      EXPECT_DOUBLE_EQ(rx.start_time, ry.start_time);
      EXPECT_DOUBLE_EQ(rx.end_time, ry.end_time);
      EXPECT_DOUBLE_EQ(rx.result.objective, ry.result.objective);
    }
  };
  expect_same_records(a.history.trials(), b.history.trials());
  expect_same_records(a.history.failures(), b.history.failures());
  EXPECT_EQ(a.failed_attempts, b.failed_attempts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.failed_trials, b.failed_trials);
  EXPECT_DOUBLE_EQ(a.wasted_seconds, b.wasted_seconds);
  EXPECT_DOUBLE_EQ(a.elapsed_seconds, b.elapsed_seconds);
}

void SeedSweep(SchedKind kind) {
  for (double p : {0.0, 0.05, 0.3}) {
    FaultOptions faults;
    faults.crash_probability = p;
    faults.max_retries = 2;
    faults.retry_backoff_seconds = 0.5;
    int64_t total_failed_attempts = 0;
    for (uint64_t seed = 0; seed < 200; ++seed) {
      RunResult result = RunChaos(kind, seed, faults);
      CheckInvariants(result, faults, 400.0);
      EXPECT_GT(result.history.num_trials(), 0u) << "seed " << seed;
      total_failed_attempts += result.failed_attempts;
    }
    if (p == 0.0) {
      EXPECT_EQ(total_failed_attempts, 0);
    } else {
      EXPECT_GT(total_failed_attempts, 0) << "crash probability " << p;
    }
  }
}

TEST(FaultInjectionPropertyTest, SeedSweepSyncBracket) {
  SeedSweep(SchedKind::kSync);
}

TEST(FaultInjectionPropertyTest, SeedSweepAsyncBracket) {
  SeedSweep(SchedKind::kAsync);
}

TEST(FaultInjectionPropertyTest, SeedSweepBatchBo) {
  SeedSweep(SchedKind::kBatchBo);
}

TEST(FaultInjectionPropertyTest, SameSeedReplaysIdenticalFailureTimeline) {
  FaultOptions faults;
  faults.crash_probability = 0.3;
  faults.timeout_seconds = 10.0;
  faults.max_retries = 2;
  faults.retry_backoff_seconds = 2.0;
  for (SchedKind kind : kAllKinds) {
    for (uint64_t seed = 0; seed < 20; ++seed) {
      RunResult a = RunChaos(kind, seed, faults);
      RunResult b = RunChaos(kind, seed, faults);
      ExpectIdenticalRuns(a, b);
      EXPECT_GT(a.failed_attempts + a.history.num_trials(), 0u);
    }
  }
}

TEST(FaultInjectionPropertyTest, TimeoutWatchdogKillsLongAttempts) {
  // Ladder resources are 3/9/27, so every attempt needing > 10 incremental
  // seconds (all level-3 work: 27 - 9 = 18, or 27 from scratch) must die to
  // the watchdog while cheaper rungs are untouched.
  FaultOptions faults;
  faults.timeout_seconds = 10.0;
  faults.max_retries = 1;
  RunResult result = RunChaos(SchedKind::kSync, 3, faults);
  CheckInvariants(result, faults, 400.0);
  EXPECT_GT(result.history.num_trials(), 0u);
  EXPECT_GT(result.failed_trials, 0);
  for (const TrialRecord& t : result.history.trials()) {
    EXPECT_LT(t.job.level, 3) << "a level-3 attempt cannot beat the watchdog";
  }
  for (const TrialRecord& t : result.history.failures()) {
    EXPECT_EQ(t.job.level, 3);
  }
}

TEST(FaultInjectionPropertyTest, RetriedJobKeepsItsTrialIdentity) {
  FaultOptions faults;
  faults.crash_probability = 0.3;
  faults.max_retries = 3;
  RunResult result = RunChaos(SchedKind::kAsync, 11, faults);
  CheckInvariants(result, faults, 400.0);
  EXPECT_GT(result.retries, 0);
  // At least one trial survived a failed attempt and completed on a later
  // attempt of the same job_id (uniqueness already checked above).
  bool saw_survivor = false;
  for (const TrialRecord& t : result.history.trials()) {
    if (t.job.attempt > 1) saw_survivor = true;
  }
  EXPECT_TRUE(saw_survivor);
}

TEST(FaultInjectionPropertyTest, EveryJobFailingStillTerminates) {
  // The scenario that used to be a deadlock: with crash probability 1 every
  // rung loses all its members, so the sync barrier must drain to empty,
  // the bracket must unwind, and the run must end at the budget with zero
  // completions instead of hanging on NextJob forever.
  FaultOptions faults;
  faults.crash_probability = 1.0;
  faults.max_retries = 1;
  for (SchedKind kind : kAllKinds) {
    RunResult result = RunChaos(kind, 7, faults);
    CheckInvariants(result, faults, 400.0);
    EXPECT_EQ(result.history.num_trials(), 0u);
    EXPECT_GT(result.failed_trials, 0);
    // Every abandonment burned its one retry first; jobs still inside their
    // retry window when the budget expires only add to the retry count.
    EXPECT_GE(result.retries, result.failed_trials);
  }
}

// ---------------------------------------------------------------------------
// Scripted sync-barrier draining: drive SyncBracketScheduler by hand.
// ---------------------------------------------------------------------------

ConfigurationSpace WideSpace() {
  ConfigurationSpace space;
  EXPECT_TRUE(space.Add(Parameter::Float("x", 0.0, 1.0)).ok());
  EXPECT_TRUE(space.Add(Parameter::Float("y", 0.0, 1.0)).ok());
  return space;
}

FailureInfo FatalFailure(int attempt = 1) {
  FailureInfo info;
  info.kind = FailureKind::kCrash;
  info.attempt = attempt;
  info.retries_remaining = 0;  // the backend's retry budget is exhausted
  info.wasted_seconds = 1.0;
  return info;
}

class SyncBarrierDrainTest : public ::testing::Test {
 protected:
  SyncBarrierDrainTest()
      : space_(WideSpace()), store_(3), sampler_(&space_, &store_, 1) {}

  BracketSchedulerOptions Options(BracketPolicy policy) {
    BracketSchedulerOptions options;
    options.ladder.eta = 3.0;
    options.ladder.num_levels = 3;
    options.ladder.max_resource = 9.0;
    options.selector.policy = policy;
    options.selector.fixed_bracket = 1;
    return options;
  }

  ConfigurationSpace space_;
  MeasurementStore store_;
  RandomSampler sampler_;
};

TEST_F(SyncBarrierDrainTest, BarrierOpensAroundOneFailedMember) {
  SyncBracketScheduler scheduler(&space_, &store_, &sampler_, nullptr,
                                 Options(BracketPolicy::kFixed));
  // Bracket 1: base rung of 9. Complete 8 with known objectives, abandon the
  // ninth — the barrier must open over the 8 survivors.
  std::vector<Job> jobs;
  for (int i = 0; i < 9; ++i) {
    std::optional<Job> job = scheduler.NextJob();
    ASSERT_TRUE(job.has_value());
    jobs.push_back(*job);
  }
  for (int i = 1; i < 9; ++i) {
    EvalResult result;
    result.objective = static_cast<double>(i);  // jobs 1,2,3 are the best
    scheduler.OnJobComplete(jobs[i], result);
  }
  EXPECT_FALSE(scheduler.NextJob().has_value());  // barrier still closed
  EXPECT_FALSE(scheduler.OnJobFailed(jobs[0], FatalFailure()));
  EXPECT_EQ(scheduler.trials_failed(), 1);
  // The abandoned configuration stays pending so Algorithm 2 keeps imputing
  // it at the median (crashing configs look mediocre, not unknown).
  EXPECT_EQ(store_.NumPending(), 1u);

  // The rung drained to 8 members; top 1/eta of the *survivors* promote.
  std::set<double> promoted;
  for (int i = 0; i < 3; ++i) {
    std::optional<Job> job = scheduler.NextJob();
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->level, 2);
    promoted.insert(job->config[0]);
  }
  EXPECT_FALSE(scheduler.NextJob().has_value());
  std::set<double> expected = {jobs[1].config[0], jobs[2].config[0],
                               jobs[3].config[0]};
  EXPECT_EQ(promoted, expected);
}

TEST_F(SyncBarrierDrainTest, WholeRungFailureCascadesToNextBracket) {
  SyncBracketScheduler scheduler(&space_, &store_, &sampler_, nullptr,
                                 Options(BracketPolicy::kRoundRobin));
  // Complete the full base rung, then kill every promotion: the bracket
  // must unwind (rung targets cascade to zero) and the next bracket start.
  std::vector<Job> jobs;
  for (int i = 0; i < 9; ++i) {
    std::optional<Job> job = scheduler.NextJob();
    ASSERT_TRUE(job.has_value());
    jobs.push_back(*job);
  }
  for (int i = 0; i < 9; ++i) {
    EvalResult result;
    result.objective = static_cast<double>(i);
    scheduler.OnJobComplete(jobs[i], result);
  }
  for (int i = 0; i < 3; ++i) {
    std::optional<Job> job = scheduler.NextJob();
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->level, 2);
    EXPECT_FALSE(scheduler.OnJobFailed(*job, FatalFailure(2)));
  }
  EXPECT_EQ(scheduler.trials_failed(), 3);

  // Not a barrier deadlock: the dead rung cascaded the bracket to complete,
  // and round robin moves on to bracket 2 (base level 2).
  std::optional<Job> job = scheduler.NextJob();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(scheduler.brackets_completed(), 1);
  EXPECT_EQ(scheduler.current_bracket(), 2);
  EXPECT_EQ(job->level, 2);
}

// ---------------------------------------------------------------------------
// Fault model unit tests.
// ---------------------------------------------------------------------------

Job ProbeJob(int64_t id, int attempt = 1) {
  Job job;
  job.job_id = id;
  job.attempt = attempt;
  return job;
}

TEST(FaultInjectorTest, NoFaultsMeansNoFailuresAndNominalDuration) {
  FaultOptions faults;  // all defaults off
  for (int64_t id = 0; id < 50; ++id) {
    AttemptPlan plan = PlanAttempt(faults, 42, ProbeJob(id), 12.5);
    EXPECT_FALSE(plan.failed);
    EXPECT_DOUBLE_EQ(plan.duration, 12.5);
  }
}

TEST(FaultInjectorTest, CertainCrashCutsTheAttemptShort) {
  FaultOptions faults;
  faults.crash_probability = 1.0;
  for (int64_t id = 0; id < 50; ++id) {
    AttemptPlan plan = PlanAttempt(faults, 42, ProbeJob(id), 10.0);
    EXPECT_TRUE(plan.failed);
    EXPECT_EQ(plan.kind, FailureKind::kCrash);
    EXPECT_GE(plan.duration, 0.0);
    EXPECT_LE(plan.duration, 10.0);
  }
}

TEST(FaultInjectorTest, WatchdogFiresAtTheTimeout) {
  FaultOptions faults;
  faults.timeout_seconds = 5.0;
  AttemptPlan long_attempt = PlanAttempt(faults, 42, ProbeJob(1), 20.0);
  EXPECT_TRUE(long_attempt.failed);
  EXPECT_EQ(long_attempt.kind, FailureKind::kTimeout);
  EXPECT_DOUBLE_EQ(long_attempt.duration, 5.0);
  AttemptPlan short_attempt = PlanAttempt(faults, 42, ProbeJob(1), 3.0);
  EXPECT_FALSE(short_attempt.failed);
  EXPECT_DOUBLE_EQ(short_attempt.duration, 3.0);
}

TEST(FaultInjectorTest, CrashAndTimeoutNeverExceedTheWatchdog) {
  FaultOptions faults;
  faults.crash_probability = 1.0;
  faults.timeout_seconds = 5.0;
  for (int64_t id = 0; id < 50; ++id) {
    AttemptPlan plan = PlanAttempt(faults, 42, ProbeJob(id), 20.0);
    EXPECT_TRUE(plan.failed);
    EXPECT_LE(plan.duration, 5.0 + 1e-12);
  }
}

TEST(FaultInjectorTest, DrawsDependOnlyOnSeedJobAndAttempt) {
  FaultOptions faults;
  faults.crash_probability = 0.5;
  faults.timeout_seconds = 8.0;
  for (int64_t id = 0; id < 20; ++id) {
    for (int attempt = 1; attempt <= 3; ++attempt) {
      AttemptPlan a = PlanAttempt(faults, 42, ProbeJob(id, attempt), 6.0);
      AttemptPlan b = PlanAttempt(faults, 42, ProbeJob(id, attempt), 6.0);
      EXPECT_EQ(a.failed, b.failed);
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_DOUBLE_EQ(a.duration, b.duration);
    }
  }
  // Different attempts of the same job get independent draws: with p = 0.5
  // over 20 jobs x 3 attempts (each under the watchdog), outcomes must not
  // all agree.
  bool saw_failed = false, saw_completed = false;
  for (int64_t id = 0; id < 20; ++id) {
    for (int attempt = 1; attempt <= 3; ++attempt) {
      AttemptPlan plan = PlanAttempt(faults, 42, ProbeJob(id, attempt), 6.0);
      (plan.failed ? saw_failed : saw_completed) = true;
    }
  }
  EXPECT_TRUE(saw_failed);
  EXPECT_TRUE(saw_completed);
}

TEST(FaultInjectorTest, RetryDelayDoublesPerFailedAttempt) {
  FaultOptions faults;
  faults.retry_backoff_seconds = 2.0;
  EXPECT_DOUBLE_EQ(RetryDelay(faults, 42, ProbeJob(7, 1)), 2.0);
  EXPECT_DOUBLE_EQ(RetryDelay(faults, 42, ProbeJob(7, 2)), 4.0);
  EXPECT_DOUBLE_EQ(RetryDelay(faults, 42, ProbeJob(7, 3)), 8.0);
  faults.retry_backoff_seconds = 0.0;
  EXPECT_DOUBLE_EQ(RetryDelay(faults, 42, ProbeJob(7, 1)), 0.0);
}

TEST(FaultInjectorTest, RetryDelayExponentIsCappedAndClampable) {
  FaultOptions faults;
  faults.retry_backoff_seconds = 1.0;
  // The doubling exponent saturates: absurd attempt numbers still yield a
  // finite delay, and past the cap every attempt gets the same one.
  double saturated = RetryDelay(faults, 42, ProbeJob(7, 1000000));
  EXPECT_TRUE(std::isfinite(saturated));
  EXPECT_DOUBLE_EQ(saturated, RetryDelay(faults, 42, ProbeJob(7, 2000000)));
  // The explicit per-delay cap clamps much earlier without touching delays
  // already below it.
  faults.max_retry_delay_seconds = 10.0;
  EXPECT_DOUBLE_EQ(RetryDelay(faults, 42, ProbeJob(7, 30)), 10.0);
  EXPECT_DOUBLE_EQ(RetryDelay(faults, 42, ProbeJob(7, 2)), 2.0);
}

TEST(FaultInjectorTest, RetryDelayJitterIsDeterministicAndBounded) {
  FaultOptions faults;
  faults.retry_backoff_seconds = 2.0;
  faults.retry_jitter = 0.5;
  double delay = RetryDelay(faults, 42, ProbeJob(7, 1));
  // Deterministic: same (seed, job_id, attempt) always gives the same
  // jittered delay.
  EXPECT_DOUBLE_EQ(delay, RetryDelay(faults, 42, ProbeJob(7, 1)));
  // Bounded: within +-jitter/2 of the base delay.
  EXPECT_GE(delay, 2.0 * 0.75);
  EXPECT_LE(delay, 2.0 * 1.25);
  // Different jobs decorrelate (8 jobs all landing on the identical jitter
  // draw would be astronomically unlikely).
  bool differs = false;
  for (int64_t id = 0; id < 8; ++id) {
    if (RetryDelay(faults, 42, ProbeJob(id, 1)) != delay) differs = true;
  }
  EXPECT_TRUE(differs);
  // Jitter off reproduces the exact un-jittered delay.
  faults.retry_jitter = 0.0;
  EXPECT_DOUBLE_EQ(RetryDelay(faults, 42, ProbeJob(7, 1)), 2.0);
}

}  // namespace
}  // namespace hypertune
