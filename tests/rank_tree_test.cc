#include "src/common/rank_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "src/common/rng.h"

namespace hypertune {
namespace {

TEST(RankTreeTest, KthMatchesStableSort) {
  RankTree tree;
  Rng rng(5);
  std::vector<double> keys;
  for (int i = 0; i < 500; ++i) {
    // Coarse values to force ties: stable order must break them by
    // insertion index.
    double key = std::floor(rng.Uniform(0.0, 20.0));
    EXPECT_EQ(tree.Insert(key), i);
    keys.push_back(key);
  }
  std::vector<int32_t> order(keys.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return keys[static_cast<size_t>(a)] < keys[static_cast<size_t>(b)];
  });
  for (size_t rank = 0; rank < order.size(); ++rank) {
    EXPECT_EQ(tree.Kth(static_cast<int64_t>(rank)), order[rank]);
    EXPECT_EQ(tree.RankOf(order[rank]), static_cast<int64_t>(rank));
  }
}

TEST(RankTreeTest, KthOpenSkipsClosedNodes) {
  RankTree tree;
  for (int i = 0; i < 10; ++i) tree.Insert(static_cast<double>(i));
  EXPECT_EQ(tree.open_count(), 10);
  EXPECT_EQ(tree.KthOpen(0), 0);

  tree.Close(0);
  tree.Close(3);
  EXPECT_EQ(tree.open_count(), 8);
  EXPECT_FALSE(tree.is_open(0));
  EXPECT_TRUE(tree.is_open(1));

  // Open nodes in ascending order: 1, 2, 4, 5, ...
  EXPECT_EQ(tree.KthOpen(0), 1);
  EXPECT_EQ(tree.KthOpen(1), 2);
  EXPECT_EQ(tree.KthOpen(2), 4);
  EXPECT_EQ(tree.KthOpen(7), 9);
  EXPECT_EQ(tree.KthOpen(8), -1);

  // Ranks are positions among ALL nodes, closed included.
  EXPECT_EQ(tree.RankOf(1), 1);
  EXPECT_EQ(tree.RankOf(4), 4);
}

TEST(RankTreeTest, RunningMedianMatchesSortedVector) {
  RankTree tree;
  Rng rng(11);
  std::vector<double> sorted;
  for (int i = 0; i < 300; ++i) {
    double value = rng.LogNormal(0.0, 1.0);
    tree.Insert(value);
    sorted.insert(std::upper_bound(sorted.begin(), sorted.end(), value),
                  value);
    // The simulator's running median: element at (n - 1) / 2.
    double expect = sorted[(sorted.size() - 1) / 2];
    double got = tree.key(tree.Kth((tree.size() - 1) / 2));
    ASSERT_DOUBLE_EQ(got, expect);
  }
}

TEST(RankTreeTest, StepsGrowLogarithmically) {
  // The treap's total work over n inserts + n queries must be O(n log n):
  // assert the step counter stays under a generous C * n * log2(n) bound
  // (a degenerate linear-depth tree would exceed it by orders of
  // magnitude).
  RankTree tree;
  Rng rng(17);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    int32_t id = tree.Insert(rng.Uniform());
    tree.RankOf(id);
  }
  const double bound =
      24.0 * static_cast<double>(n) * std::log2(static_cast<double>(n));
  EXPECT_LT(static_cast<double>(tree.steps()), bound);
}

TEST(RankTreeTest, AscendingInsertionStaysBalanced) {
  // Sorted input is the worst case for a plain BST; the treap's mixed
  // priorities must keep it balanced.
  RankTree tree;
  const int n = 10000;
  for (int i = 0; i < n; ++i) tree.Insert(static_cast<double>(i));
  const int64_t before = tree.steps();
  tree.RankOf(n / 2);
  const int64_t probe = tree.steps() - before;
  // A single query touches O(log n) nodes, far below n.
  EXPECT_LT(probe, 200);
}

TEST(RankTreeTest, DeterministicAcrossInstances) {
  // Same insertion sequence -> same shape -> same step counts and queries.
  RankTree a;
  RankTree b;
  Rng rng(23);
  std::vector<double> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(rng.Uniform());
  for (double k : keys) {
    a.Insert(k);
    b.Insert(k);
  }
  EXPECT_EQ(a.steps(), b.steps());
  for (int64_t rank = 0; rank < a.size(); ++rank) {
    EXPECT_EQ(a.Kth(rank), b.Kth(rank));
  }
}

}  // namespace
}  // namespace hypertune
