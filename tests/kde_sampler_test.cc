#include "src/optimizer/kde_sampler.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace hypertune {
namespace {

ConfigurationSpace MixedSpace() {
  ConfigurationSpace space;
  EXPECT_TRUE(space.Add(Parameter::Float("x", 0.0, 1.0)).ok());
  EXPECT_TRUE(space.Add(Parameter::Float("y", 0.0, 1.0)).ok());
  EXPECT_TRUE(space.Add(Parameter::Categorical("op", {"a", "b", "c"})).ok());
  return space;
}

double Objective(const Configuration& c) {
  // Minimum at x=0.2, y=0.8, op="b" (index 1).
  double v = (c[0] - 0.2) * (c[0] - 0.2) + (c[1] - 0.8) * (c[1] - 0.8);
  if (c[2] != 1.0) v += 0.5;
  return v;
}

TEST(KdeSamplerTest, RandomUntilEnoughData) {
  ConfigurationSpace space = MixedSpace();
  MeasurementStore store(1);
  KdeSamplerOptions options;
  options.seed = 1;
  KdeSampler sampler(&space, &store, options);
  Configuration c = sampler.Sample(1);
  EXPECT_TRUE(space.Validate(c).ok());
  EXPECT_EQ(sampler.last_fit_level(), 0);
}

TEST(KdeSamplerTest, ProposalsAreValid) {
  ConfigurationSpace space = MixedSpace();
  MeasurementStore store(1);
  Rng rng(2);
  for (int i = 0; i < 80; ++i) {
    Configuration c = space.Sample(&rng);
    store.Add(1, c, Objective(c));
  }
  KdeSamplerOptions options;
  options.seed = 3;
  options.random_fraction = 0.0;
  KdeSampler sampler(&space, &store, options);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(space.Validate(sampler.Sample(1)).ok());
  }
  EXPECT_EQ(sampler.last_fit_level(), 1);
}

TEST(KdeSamplerTest, ConcentratesNearGoodRegion) {
  ConfigurationSpace space = MixedSpace();
  MeasurementStore store(1);
  Rng rng(4);
  for (int i = 0; i < 120; ++i) {
    Configuration c = space.Sample(&rng);
    store.Add(1, c, Objective(c));
  }
  KdeSamplerOptions options;
  options.seed = 5;
  options.random_fraction = 0.0;
  KdeSampler sampler(&space, &store, options);
  double total = 0.0;
  int good_category = 0;
  const int n = 40;
  for (int i = 0; i < n; ++i) {
    Configuration c = sampler.Sample(1);
    total += Objective(c);
    if (c[2] == 1.0) ++good_category;
  }
  // Uniform sampling averages ~0.55 on this objective.
  EXPECT_LT(total / n, 0.35);
  // The categorical histogram should favor the good choice.
  EXPECT_GT(good_category, n / 2);
}

TEST(KdeSamplerTest, UsesHighestLevelWithData) {
  ConfigurationSpace space = MixedSpace();
  MeasurementStore store(3);
  Rng rng(6);
  for (int i = 0; i < 40; ++i) {
    Configuration c = space.Sample(&rng);
    store.Add(1, c, Objective(c));
  }
  for (int i = 0; i < 10; ++i) {
    Configuration c = space.Sample(&rng);
    store.Add(2, c, Objective(c));
  }
  KdeSamplerOptions options;
  options.seed = 7;
  options.random_fraction = 0.0;
  options.min_points = 8;
  KdeSampler sampler(&space, &store, options);
  sampler.Sample(1);
  EXPECT_EQ(sampler.last_fit_level(), 2);
}

TEST(KdeSamplerTest, DeterministicGivenSeed) {
  ConfigurationSpace space = MixedSpace();
  MeasurementStore store(1);
  Rng rng(8);
  for (int i = 0; i < 60; ++i) {
    Configuration c = space.Sample(&rng);
    store.Add(1, c, Objective(c));
  }
  KdeSamplerOptions options;
  options.seed = 9;
  options.random_fraction = 0.0;
  KdeSampler a(&space, &store, options);
  KdeSampler b(&space, &store, options);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(a.Sample(1) == b.Sample(1));
  }
}

}  // namespace
}  // namespace hypertune
