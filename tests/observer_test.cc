#include <atomic>

#include <gtest/gtest.h>

#include "src/core/tuner_factory.h"
#include "src/problems/counting_ones.h"
#include "src/runtime/thread_cluster.h"

namespace hypertune {
namespace {

CountingOnes SmallProblem() {
  CountingOnesOptions options;
  options.num_categorical = 3;
  options.num_continuous = 3;
  options.max_samples = 27.0;
  return CountingOnes(options);
}

TEST(TrialObserverTest, SimulatorInvokesObserverPerTrial) {
  CountingOnes problem = SmallProblem();
  TunerFactoryOptions factory;
  factory.method = Method::kAsha;
  factory.seed = 1;
  std::unique_ptr<Tuner> tuner = CreateTuner(problem, factory);

  size_t calls = 0;
  double last_time = -1.0;
  bool ordered = true;
  ClusterOptions cluster;
  cluster.num_workers = 4;
  cluster.time_budget_seconds = 400.0;
  cluster.seed = 1;
  cluster.observer = [&](const TrialRecord& trial) {
    ++calls;
    if (trial.end_time < last_time) ordered = false;
    last_time = trial.end_time;
  };
  SimulatedCluster sim(cluster);
  RunResult run = sim.Run(tuner->scheduler(), problem);
  EXPECT_EQ(calls, run.history.num_trials());
  EXPECT_TRUE(ordered) << "observer must see completions in time order";
}

TEST(TrialObserverTest, ObserverSeesFinalObjectives) {
  CountingOnes problem = SmallProblem();
  TunerFactoryOptions factory;
  factory.method = Method::kARandom;
  factory.seed = 2;
  std::unique_ptr<Tuner> tuner = CreateTuner(problem, factory);

  double observed_best = 1e18;
  ClusterOptions cluster;
  cluster.num_workers = 2;
  cluster.time_budget_seconds = 3000.0;
  cluster.seed = 2;
  cluster.observer = [&](const TrialRecord& trial) {
    observed_best = std::min(observed_best, trial.result.objective);
  };
  SimulatedCluster sim(cluster);
  RunResult run = sim.Run(tuner->scheduler(), problem);
  EXPECT_DOUBLE_EQ(observed_best, run.history.best_objective());
}

TEST(TrialObserverTest, ThreadClusterInvokesObserver) {
  CountingOnes problem = SmallProblem();
  TunerFactoryOptions factory;
  factory.method = Method::kAsha;
  factory.seed = 3;
  std::unique_ptr<Tuner> tuner = CreateTuner(problem, factory);

  std::atomic<size_t> calls{0};
  ThreadClusterOptions cluster;
  cluster.num_workers = 4;
  cluster.time_budget_seconds = 10.0;
  cluster.max_trials = 40;
  cluster.seed = 3;
  cluster.observer = [&](const TrialRecord&) { calls.fetch_add(1); };
  ThreadCluster threads(cluster);
  RunResult run = threads.Run(tuner->scheduler(), problem);
  EXPECT_EQ(calls.load(), run.history.num_trials());
}

}  // namespace
}  // namespace hypertune
