#include "src/runtime/simulated_cluster.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/problems/counting_ones.h"
#include "src/runtime/scheduler_interface.h"

namespace hypertune {
namespace {

/// Scheduler issuing `total` independent full-resource jobs, optionally
/// blocking every `barrier_every` jobs until outstanding work completes
/// (to test synchronous idle accounting).
class FixedJobScheduler : public SchedulerInterface {
 public:
  FixedJobScheduler(const ConfigurationSpace& space, int64_t total,
                    double resource, int barrier_every = 0)
      : space_(space),
        total_(total),
        resource_(resource),
        barrier_every_(barrier_every),
        rng_(1) {}

  std::optional<Job> NextJob() override {
    if (issued_ >= total_) return std::nullopt;
    if (barrier_every_ > 0 && issued_ % barrier_every_ == 0 &&
        issued_ > completed_) {
      return std::nullopt;  // barrier until everything completed
    }
    Job job;
    job.job_id = issued_++;
    job.config = space_.Sample(&rng_);
    job.level = 1;
    job.resource = resource_;
    return job;
  }

  void OnJobComplete(const Job&, const EvalResult&) override { ++completed_; }
  bool Exhausted() const override { return issued_ >= total_; }

  int64_t completed() const { return completed_; }

 private:
  const ConfigurationSpace& space_;
  int64_t total_;
  double resource_;
  int barrier_every_;
  Rng rng_;
  int64_t issued_ = 0;
  int64_t completed_ = 0;
};

class SimulatedClusterTest : public ::testing::Test {
 protected:
  SimulatedClusterTest() : problem_() {}
  CountingOnes problem_;  // cost = resource seconds
};

TEST_F(SimulatedClusterTest, RespectsTimeBudget) {
  FixedJobScheduler scheduler(problem_.space(), 1000000, 10.0);
  ClusterOptions options;
  options.num_workers = 4;
  options.time_budget_seconds = 100.0;
  SimulatedCluster cluster(options);
  RunResult result = cluster.Run(&scheduler, problem_);
  // Each job takes 10 virtual seconds; 4 workers, 100 s -> 40 completions.
  EXPECT_EQ(result.history.num_trials(), 40u);
  EXPECT_LE(result.elapsed_seconds, 100.0 + 1e-9);
  EXPECT_NEAR(result.utilization, 1.0, 1e-9);
}

TEST_F(SimulatedClusterTest, StopsWhenSchedulerExhausted) {
  FixedJobScheduler scheduler(problem_.space(), 7, 5.0);
  ClusterOptions options;
  options.num_workers = 4;
  options.time_budget_seconds = 1e9;
  SimulatedCluster cluster(options);
  RunResult result = cluster.Run(&scheduler, problem_);
  EXPECT_EQ(result.history.num_trials(), 7u);
  EXPECT_LT(result.elapsed_seconds, 100.0);
}

TEST_F(SimulatedClusterTest, MaxTrialsCap) {
  FixedJobScheduler scheduler(problem_.space(), 1000, 1.0);
  ClusterOptions options;
  options.num_workers = 2;
  options.time_budget_seconds = 1e9;
  options.max_trials = 13;
  SimulatedCluster cluster(options);
  RunResult result = cluster.Run(&scheduler, problem_);
  EXPECT_EQ(result.history.num_trials(), 13u);
}

TEST_F(SimulatedClusterTest, DeterministicGivenSeed) {
  auto run = [&](uint64_t seed) {
    FixedJobScheduler scheduler(problem_.space(), 100, 3.0);
    ClusterOptions options;
    options.num_workers = 3;
    options.time_budget_seconds = 200.0;
    options.seed = seed;
    options.straggler_sigma = 0.3;
    SimulatedCluster cluster(options);
    return cluster.Run(&scheduler, problem_);
  };
  RunResult a = run(5), b = run(5), c = run(6);
  ASSERT_EQ(a.history.num_trials(), b.history.num_trials());
  for (size_t i = 0; i < a.history.trials().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.history.trials()[i].end_time,
                     b.history.trials()[i].end_time);
    EXPECT_DOUBLE_EQ(a.history.trials()[i].result.objective,
                     b.history.trials()[i].result.objective);
  }
  // A different seed changes the straggler noise and thus the timeline.
  bool any_different = a.history.num_trials() != c.history.num_trials();
  for (size_t i = 0;
       !any_different && i < std::min(a.history.trials().size(),
                                      c.history.trials().size());
       ++i) {
    if (a.history.trials()[i].end_time != c.history.trials()[i].end_time) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST_F(SimulatedClusterTest, StragglerNoisePerturbsDurations) {
  FixedJobScheduler scheduler(problem_.space(), 50, 10.0);
  ClusterOptions options;
  options.num_workers = 1;
  options.time_budget_seconds = 1e6;
  options.straggler_sigma = 0.5;
  options.seed = 7;
  SimulatedCluster cluster(options);
  RunResult result = cluster.Run(&scheduler, problem_);
  ASSERT_EQ(result.history.num_trials(), 50u);
  bool saw_fast = false, saw_slow = false;
  for (const TrialRecord& t : result.history.trials()) {
    double duration = t.end_time - t.start_time;
    if (duration < 9.0) saw_fast = true;
    if (duration > 11.0) saw_slow = true;
  }
  EXPECT_TRUE(saw_fast);
  EXPECT_TRUE(saw_slow);
}

TEST_F(SimulatedClusterTest, BarriersCreateIdleTime) {
  // Jobs in batches of 8 on 8 workers, but with straggler noise the batch
  // finishes unevenly -> idle time accrues at each barrier.
  FixedJobScheduler scheduler(problem_.space(), 64, 10.0,
                              /*barrier_every=*/8);
  ClusterOptions options;
  options.num_workers = 8;
  options.time_budget_seconds = 1e6;
  options.straggler_sigma = 0.4;
  options.seed = 8;
  SimulatedCluster cluster(options);
  RunResult result = cluster.Run(&scheduler, problem_);
  EXPECT_EQ(result.history.num_trials(), 64u);
  EXPECT_LT(result.utilization, 0.95);
  EXPECT_GT(result.idle_seconds, 0.0);
}

TEST_F(SimulatedClusterTest, DispatchOverheadExtendsRuntime) {
  auto elapsed_with_overhead = [&](double overhead) {
    FixedJobScheduler scheduler(problem_.space(), 20, 10.0);
    ClusterOptions options;
    options.num_workers = 1;
    options.time_budget_seconds = 1e6;
    options.dispatch_overhead_seconds = overhead;
    SimulatedCluster cluster(options);
    return cluster.Run(&scheduler, problem_).elapsed_seconds;
  };
  EXPECT_NEAR(elapsed_with_overhead(0.0), 200.0, 1e-9);
  EXPECT_NEAR(elapsed_with_overhead(1.0), 220.0, 1e-9);
}

TEST_F(SimulatedClusterTest, ZeroTrialRunHasZeroUtilization) {
  // A scheduler with no work at all must yield utilization 0, not NaN
  // (busy + idle is 0 when nothing ever ran).
  FixedJobScheduler scheduler(problem_.space(), 0, 10.0);
  ClusterOptions options;
  options.num_workers = 4;
  options.time_budget_seconds = 100.0;
  SimulatedCluster cluster(options);
  RunResult result = cluster.Run(&scheduler, problem_);
  EXPECT_EQ(result.history.num_trials(), 0u);
  EXPECT_FALSE(std::isnan(result.utilization));
  EXPECT_DOUBLE_EQ(result.utilization, 0.0);
  EXPECT_DOUBLE_EQ(result.elapsed_seconds, 0.0);
}

TEST_F(SimulatedClusterTest, CurveIsMonotoneNonIncreasing) {
  FixedJobScheduler scheduler(problem_.space(), 200, 2.0);
  ClusterOptions options;
  options.num_workers = 4;
  options.time_budget_seconds = 1e5;
  SimulatedCluster cluster(options);
  RunResult result = cluster.Run(&scheduler, problem_);
  double last = 1e18;
  for (const CurvePoint& p : result.history.curve()) {
    EXPECT_LE(p.best_objective, last + 1e-12);
    last = p.best_objective;
  }
}

TEST_F(SimulatedClusterTest, BestObjectiveAtQueries) {
  FixedJobScheduler scheduler(problem_.space(), 10, 10.0);
  ClusterOptions options;
  options.num_workers = 1;
  options.time_budget_seconds = 1e5;
  SimulatedCluster cluster(options);
  RunResult result = cluster.Run(&scheduler, problem_);
  const TrialHistory& history = result.history;
  EXPECT_TRUE(std::isinf(history.BestObjectiveAt(5.0)));  // before first
  EXPECT_DOUBLE_EQ(history.BestObjectiveAt(1e9), history.best_objective());
  EXPECT_GE(history.BestObjectiveAt(20.0), history.best_objective());
}

// --- Calendar-queue event-core edge cases. ---

TEST_F(SimulatedClusterTest, SameTimestampCompletionsKeepJobIdOrder) {
  // All workers start identical-duration jobs at t = 0, so every completion
  // lands on the same timestamp: the event total order's job_id tie-break
  // must record them in issue order, every run.
  for (int trial = 0; trial < 3; ++trial) {
    FixedJobScheduler scheduler(problem_.space(), 16, 10.0);
    ClusterOptions options;
    options.num_workers = 16;
    options.time_budget_seconds = 1e4;
    SimulatedCluster cluster(options);
    RunResult result = cluster.Run(&scheduler, problem_);
    ASSERT_EQ(result.history.num_trials(), 16u);
    const TrialList trials = result.history.trials();
    for (size_t i = 0; i < trials.size(); ++i) {
      EXPECT_EQ(trials[i].job.job_id, static_cast<int64_t>(i));
      EXPECT_DOUBLE_EQ(trials[i].end_time, 10.0);
    }
  }
}

TEST_F(SimulatedClusterTest, EpochStaleEventsAreDropped) {
  // A dying worker orphans its attempt; the attempt's completion event is
  // still queued but must be skipped as stale (epoch mismatch), then the
  // job is requeued and completes exactly once.
  FixedJobScheduler scheduler(problem_.space(), 6, 50.0);
  ClusterOptions options;
  options.num_workers = 2;
  options.time_budget_seconds = 1e5;
  options.worker_faults.mttf_seconds = 80.0;
  options.worker_faults.mttr_seconds = 10.0;
  options.seed = 5;
  SimulatedCluster cluster(options);
  RunResult result = cluster.Run(&scheduler, problem_);
  // Every issued job eventually completed exactly once despite deaths.
  EXPECT_EQ(result.history.num_trials() + result.history.num_failures(), 6u);
  if (result.worker_deaths > 0) {
    // Orphaned attempts were requeued, not double-completed.
    EXPECT_EQ(scheduler.completed(),
              static_cast<int64_t>(result.history.num_trials()));
  }
}

TEST_F(SimulatedClusterTest, WidelySpreadDurationsStayDeterministic) {
  // Huge straggler noise scatters event times across orders of magnitude —
  // the calendar ring resizes, rolls over its year boundary, and falls back
  // to direct-min scans. Two identically seeded runs must still be
  // bit-identical, and events must be processed in nondecreasing time.
  auto run = [&] {
    FixedJobScheduler scheduler(problem_.space(), 100, 5.0);
    ClusterOptions options;
    options.num_workers = 8;
    options.time_budget_seconds = 1e12;
    options.straggler_sigma = 4.0;  // multiplicative spread of ~e^4 sigmas
    options.seed = 9;
    SimulatedCluster cluster(options);
    return cluster.Run(&scheduler, problem_);
  };
  RunResult a = run();
  RunResult b = run();
  ASSERT_EQ(a.history.num_trials(), b.history.num_trials());
  ASSERT_EQ(a.history.num_trials(), 100u);
  const TrialList ta = a.history.trials();
  const TrialList tb = b.history.trials();
  double last_end = 0.0;
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].job.job_id, tb[i].job.job_id);
    EXPECT_DOUBLE_EQ(ta[i].end_time, tb[i].end_time);
    EXPECT_GE(ta[i].end_time, last_end);
    last_end = ta[i].end_time;
  }
}

TEST_F(SimulatedClusterTest, EventsProcessedCountsQueuePops) {
  FixedJobScheduler scheduler(problem_.space(), 25, 4.0);
  ClusterOptions options;
  options.num_workers = 5;
  options.time_budget_seconds = 1e4;
  SimulatedCluster cluster(options);
  RunResult result = cluster.Run(&scheduler, problem_);
  // Fault-free: one completion event per trial, nothing else.
  EXPECT_EQ(result.events_processed, 25);
}

TEST_F(SimulatedClusterTest, AggregatesRetentionKeepsAnswersExact) {
  auto run = [&](TrialRetention retention) {
    FixedJobScheduler scheduler(problem_.space(), 300, 3.0);
    ClusterOptions options;
    options.num_workers = 6;
    options.time_budget_seconds = 1e5;
    options.retention = retention;
    options.seed = 4;
    SimulatedCluster cluster(options);
    return cluster.Run(&scheduler, problem_);
  };
  RunResult full = run(TrialRetention::kFull);
  RunResult aggregates = run(TrialRetention::kAggregates);

  // Aggregates keep no per-trial records...
  EXPECT_EQ(full.history.trials().size(), 300u);
  EXPECT_EQ(aggregates.history.trials().size(), 0u);
  // ...but every aggregate answer matches the full history exactly.
  EXPECT_EQ(aggregates.history.num_trials(), full.history.num_trials());
  EXPECT_DOUBLE_EQ(aggregates.history.best_objective(),
                   full.history.best_objective());
  EXPECT_DOUBLE_EQ(aggregates.history.incumbent_test(),
                   full.history.incumbent_test());
  EXPECT_DOUBLE_EQ(aggregates.history.TotalEvaluationCost(),
                   full.history.TotalEvaluationCost());
  for (double t : {10.0, 50.0, 100.0, 149.5, 1e5}) {
    EXPECT_DOUBLE_EQ(aggregates.history.BestObjectiveAt(t),
                     full.history.BestObjectiveAt(t));
  }
  const double target = full.history.best_objective();
  EXPECT_DOUBLE_EQ(aggregates.history.TimeToReach(target),
                   full.history.TimeToReach(target));
  // The improvement-only curve is a (weak) subset of the full curve.
  EXPECT_LE(aggregates.history.curve().size(), full.history.curve().size());
}

TEST_F(SimulatedClusterTest, TrialsForConfigIndexesCompletions) {
  FixedJobScheduler scheduler(problem_.space(), 50, 2.0);
  ClusterOptions options;
  options.num_workers = 4;
  options.time_budget_seconds = 1e5;
  SimulatedCluster cluster(options);
  RunResult result = cluster.Run(&scheduler, problem_);
  const TrialList trials = result.history.trials();
  ASSERT_EQ(trials.size(), 50u);
  for (size_t i = 0; i < trials.size(); ++i) {
    const TrialRecord record = trials[i];
    std::vector<int64_t> rows =
        result.history.TrialsForConfig(record.job.config.Hash());
    // The row of this trial appears in its config's index.
    EXPECT_NE(std::find(rows.begin(), rows.end(), static_cast<int64_t>(i)),
              rows.end());
  }
  EXPECT_TRUE(result.history.TrialsForConfig(0xDEADBEEFULL).empty());
}

}  // namespace
}  // namespace hypertune
