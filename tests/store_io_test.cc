#include "src/runtime/store_io.h"

#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/tuner_factory.h"
#include "src/problems/counting_ones.h"
#include "src/runtime/wire_format.h"

namespace hypertune {
namespace {

ConfigurationSpace MixedSpace() {
  ConfigurationSpace space;
  EXPECT_TRUE(space.Add(Parameter::Float("lr", 1e-3, 1.0, true)).ok());
  EXPECT_TRUE(space.Add(Parameter::Int("depth", 3, 12)).ok());
  EXPECT_TRUE(space.Add(Parameter::Categorical("op", {"a", "b"})).ok());
  return space;
}

TEST(StoreIoTest, RoundTripPreservesEverything) {
  ConfigurationSpace space = MixedSpace();
  MeasurementStore store(3);
  Rng rng(1);
  for (int i = 0; i < 60; ++i) {
    store.Add(1 + i % 3, space.Sample(&rng), rng.Gaussian(5.0, 2.0));
  }

  std::ostringstream out;
  ASSERT_TRUE(WriteStoreCsv(store, space, &out).ok());

  MeasurementStore loaded(3);
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadStoreCsv(&in, space, &loaded).ok());

  ASSERT_EQ(loaded.GroupSizes(), store.GroupSizes());
  for (int level = 1; level <= 3; ++level) {
    const auto& a = store.group(level);
    const auto& b = loaded.group(level);
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(a[i].config == b[i].config) << "level " << level;
      EXPECT_DOUBLE_EQ(a[i].objective, b[i].objective);
    }
  }
}

TEST(StoreIoTest, PendingIsNotPersisted) {
  ConfigurationSpace space = MixedSpace();
  MeasurementStore store(1);
  store.Add(1, Configuration({0.1, 5.0, 1.0}), 2.0);
  store.AddPending(Configuration({0.2, 6.0, 0.0}), 1);
  std::ostringstream out;
  ASSERT_TRUE(WriteStoreCsv(store, space, &out).ok());
  MeasurementStore loaded(1);
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadStoreCsv(&in, space, &loaded).ok());
  EXPECT_EQ(loaded.TotalSize(), 1u);
  EXPECT_EQ(loaded.NumPending(), 0u);
}

TEST(StoreIoTest, HeaderMismatchRejected) {
  ConfigurationSpace space = MixedSpace();
  MeasurementStore store(1);
  std::istringstream wrong_names("level,objective,lr,depth,kernel\n");
  EXPECT_EQ(ReadStoreCsv(&wrong_names, space, &store).code(),
            StatusCode::kInvalidArgument);
  std::istringstream too_few("level,objective,lr\n");
  EXPECT_EQ(ReadStoreCsv(&too_few, space, &store).code(),
            StatusCode::kInvalidArgument);
  std::istringstream empty("");
  EXPECT_EQ(ReadStoreCsv(&empty, space, &store).code(),
            StatusCode::kInvalidArgument);
}

TEST(StoreIoTest, MalformedRowsRejected) {
  ConfigurationSpace space = MixedSpace();
  MeasurementStore store(2);
  std::string header = "level,objective,lr,depth,op\n";
  std::istringstream bad_level(header + "9,1.0,0.1,5,1\n");
  EXPECT_EQ(ReadStoreCsv(&bad_level, space, &store).code(),
            StatusCode::kInvalidArgument);
  std::istringstream bad_value(header + "1,1.0,xyz,5,1\n");
  EXPECT_EQ(ReadStoreCsv(&bad_value, space, &store).code(),
            StatusCode::kInvalidArgument);
  std::istringstream out_of_range(header + "1,1.0,0.1,99,1\n");
  EXPECT_EQ(ReadStoreCsv(&out_of_range, space, &store).code(),
            StatusCode::kOutOfRange);
}

TEST(StoreIoTest, NonFiniteObjectivesRejectedOnWriteAndRead) {
  ConfigurationSpace space = MixedSpace();
  // Write side: a store holding a failed-trial marker (+inf) or a NaN must
  // not be persisted at all — it could never round-trip as history.
  for (double poison : {std::numeric_limits<double>::infinity(),
                        std::numeric_limits<double>::quiet_NaN()}) {
    MeasurementStore store(1);
    store.Add(1, Configuration({0.1, 5.0, 1.0}), 2.0);
    store.Add(1, Configuration({0.2, 6.0, 0.0}), poison);
    std::ostringstream out;
    Status status = WriteStoreCsv(store, space, &out);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("non-finite"), std::string::npos);
  }
  // Read side: hand-edited CSVs with inf/nan objectives are rejected the
  // same way (strtod happily parses both spellings).
  std::string header = "level,objective,lr,depth,op\n";
  for (const char* poison : {"inf", "nan", "-inf"}) {
    MeasurementStore store(1);
    std::istringstream in(header + "1," + poison + ",0.1,5,1\n");
    EXPECT_EQ(ReadStoreCsv(&in, space, &store).code(),
              StatusCode::kInvalidArgument)
        << poison;
    EXPECT_EQ(store.TotalSize(), 0u);
  }
}

TEST(StoreIoTest, FiniteObjectiveRoundTripSurvivesExtremes) {
  ConfigurationSpace space = MixedSpace();
  MeasurementStore store(1);
  // Denormals and huge-but-finite magnitudes survive the 17-digit format.
  store.Add(1, Configuration({0.1, 5.0, 1.0}),
            std::numeric_limits<double>::denorm_min());
  store.Add(1, Configuration({0.2, 6.0, 0.0}),
            -std::numeric_limits<double>::max());
  std::ostringstream out;
  ASSERT_TRUE(WriteStoreCsv(store, space, &out).ok());
  MeasurementStore loaded(1);
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadStoreCsv(&in, space, &loaded).ok());
  ASSERT_EQ(loaded.group(1).size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.group(1)[0].objective,
                   std::numeric_limits<double>::denorm_min());
  EXPECT_DOUBLE_EQ(loaded.group(1)[1].objective,
                   -std::numeric_limits<double>::max());
}

TEST(StoreIoTest, FileRoundTripAndWarmStart) {
  // End-to-end warm start: run a short session, persist its measurements,
  // load them into a fresh tuner, and verify the model-based sampler
  // starts informed (the fresh tuner's store is pre-populated).
  CountingOnesOptions options;
  options.num_categorical = 3;
  options.num_continuous = 3;
  options.max_samples = 27.0;
  CountingOnes problem(options);

  TunerFactoryOptions factory;
  factory.method = Method::kHyperTune;
  factory.seed = 5;
  std::unique_ptr<Tuner> first = CreateTuner(problem, factory);
  ClusterOptions cluster;
  cluster.num_workers = 4;
  cluster.time_budget_seconds = 400.0;
  cluster.seed = 5;
  first->Run(problem, cluster);
  ASSERT_GT(first->store()->TotalSize(), 10u);

  std::string path = ::testing::TempDir() + "/hypertune_store.csv";
  ASSERT_TRUE(SaveStore(*first->store(), problem.space(), path).ok());

  factory.seed = 6;
  std::unique_ptr<Tuner> second = CreateTuner(problem, factory);
  ASSERT_TRUE(LoadStore(path, problem.space(), second->store()).ok());
  EXPECT_EQ(second->store()->TotalSize(), first->store()->TotalSize());

  // The warm-started run proceeds normally.
  cluster.seed = 6;
  RunResult warm = second->Run(problem, cluster);
  EXPECT_GT(warm.history.num_trials(), 5u);
}

TEST(StoreIoTest, LoadMissingFileIsNotFound) {
  ConfigurationSpace space = MixedSpace();
  MeasurementStore store(1);
  EXPECT_EQ(LoadStore("/nonexistent/path.csv", space, &store).code(),
            StatusCode::kNotFound);
}

TEST(StoreIoTest, SaveStoreWritesBinaryAndRoundTripsExactly) {
  ConfigurationSpace space = MixedSpace();
  MeasurementStore store(3);
  Rng rng(2);
  for (int i = 0; i < 40; ++i) {
    store.Add(1 + i % 3, space.Sample(&rng), rng.Gaussian(5.0, 2.0));
  }
  std::string path = ::testing::TempDir() + "/hypertune_store_v1.bin";
  ASSERT_TRUE(SaveStore(store, space, path).ok());

  // What landed on disk is the v1 binary format, not CSV.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_GE(bytes.size(), sizeof(kStoreWireMagic));
  EXPECT_EQ(
      std::memcmp(bytes.data(), kStoreWireMagic, sizeof(kStoreWireMagic)), 0);

  MeasurementStore loaded(3);
  ASSERT_TRUE(LoadStore(path, space, &loaded).ok());
  ASSERT_EQ(loaded.GroupSizes(), store.GroupSizes());
  for (int level = 1; level <= 3; ++level) {
    const auto& a = store.group(level);
    const auto& b = loaded.group(level);
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(a[i].config == b[i].config) << "level " << level;
      // Bit-exact, not just close: binary doubles skip text formatting.
      EXPECT_EQ(a[i].objective, b[i].objective);
    }
  }
}

TEST(StoreIoTest, LegacyV0CsvFixtureStillLoads) {
  // A store file committed in the v0 (CSV) era must keep loading through
  // LoadStore's magic sniff even though SaveStore now writes binary.
  ConfigurationSpace space = MixedSpace();
  MeasurementStore store(2);
  ASSERT_TRUE(
      LoadStore(HYPERTUNE_TESTDATA_DIR "/store_v0.csv", space, &store).ok());
  ASSERT_EQ(store.group(1).size(), 2u);
  ASSERT_EQ(store.group(2).size(), 1u);
  EXPECT_DOUBLE_EQ(store.group(1)[0].objective, 2.5);
  EXPECT_DOUBLE_EQ(store.group(1)[0].config[0], 0.1);
  EXPECT_DOUBLE_EQ(store.group(1)[1].config[1], 7.0);
  EXPECT_DOUBLE_EQ(store.group(2)[0].objective, 0.5);
}

TEST(StoreIoTest, NewerWireVersionIsRejectedWithClearError) {
  ConfigurationSpace space = MixedSpace();
  // A header claiming version kWireFormatVersion + 1, as a future build
  // would write it. The reader must refuse with an upgrade hint rather
  // than misparse records it cannot understand.
  std::string bytes(kStoreWireMagic, sizeof(kStoreWireMagic));
  WireEncoder header;
  header.PutU8(1);  // store header tag
  header.PutU32(kWireFormatVersion + 1);
  header.PutU32(2);  // num_levels
  header.PutU32(3);  // num_params
  for (const char* name : {"lr", "depth", "op"}) {
    header.PutString(name);
  }
  AppendRecord(header.Release(), &bytes);

  MeasurementStore store(2);
  Status status = DecodeStoreWire(bytes, space, &store);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("newer wire format version"),
            std::string::npos);
  EXPECT_EQ(store.TotalSize(), 0u);
}

TEST(StoreIoTest, CorruptBinaryStoreIsRejected) {
  ConfigurationSpace space = MixedSpace();
  MeasurementStore store(1);
  store.Add(1, Configuration({0.1, 5.0, 1.0}), 2.0);
  std::string bytes;
  ASSERT_TRUE(EncodeStoreWire(store, space, &bytes).ok());

  // Bad magic: not recognized as a binary stream at all.
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  MeasurementStore loaded(1);
  EXPECT_EQ(DecodeStoreWire(wrong_magic, space, &loaded).code(),
            StatusCode::kInvalidArgument);

  // A flipped payload bit trips the record CRC.
  std::string flipped = bytes;
  flipped[flipped.size() - 3] =
      static_cast<char>(flipped[flipped.size() - 3] ^ 0x40);
  EXPECT_EQ(DecodeStoreWire(flipped, space, &loaded).code(),
            StatusCode::kDataLoss);

  // A truncated tail is detected rather than silently dropped.
  std::string truncated = bytes.substr(0, bytes.size() - 2);
  EXPECT_EQ(DecodeStoreWire(truncated, space, &loaded).code(),
            StatusCode::kDataLoss);
}

TEST(StoreIoTest, BinaryEncodeRejectsNonFiniteObjectives) {
  ConfigurationSpace space = MixedSpace();
  MeasurementStore store(1);
  store.Add(1, Configuration({0.1, 5.0, 1.0}),
            std::numeric_limits<double>::infinity());
  std::string bytes;
  Status status = EncodeStoreWire(store, space, &bytes);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("non-finite"), std::string::npos);
}

}  // namespace
}  // namespace hypertune
