#include "src/common/thread_pool.h"

#include <atomic>
#include <chrono>

#include <gtest/gtest.h>

namespace hypertune {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> running{0};
  std::atomic<int> max_running{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      int now = running.fetch_add(1) + 1;
      int prev = max_running.load();
      while (now > prev && !max_running.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      running.fetch_sub(1);
    });
  }
  pool.WaitIdle();
  EXPECT_GE(max_running.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, SubmitFromWorkerThread) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(1); });
  });
  // Give the nested task time to enqueue before waiting.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace hypertune
