// Codec and framing tests for the driver<->worker process protocol:
// round-trips for every message type, tag rejection, and the socketpair
// framing's EOF / torn-frame / CRC classifications the supervisor's loss
// handling keys off.
#include "src/runtime/process_protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include <gtest/gtest.h>

#include "src/config/configuration.h"

namespace hypertune {
namespace {

Job TestJob() {
  Job job;
  job.job_id = 421;
  job.config = Configuration({0.25, 0.75, 0.5});
  job.level = 2;
  job.bracket = 1;
  job.resource = 81.0;
  job.resume_from = 27.0;
  job.attempt = 3;
  return job;
}

void ExpectSameJob(const Job& a, const Job& b) {
  EXPECT_EQ(a.job_id, b.job_id);
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(a.bracket, b.bracket);
  EXPECT_EQ(a.resource, b.resource);
  EXPECT_EQ(a.resume_from, b.resume_from);
  EXPECT_EQ(a.attempt, b.attempt);
  ASSERT_EQ(a.config.size(), b.config.size());
  for (size_t d = 0; d < a.config.size(); ++d) {
    EXPECT_EQ(a.config[d], b.config[d]);
  }
}

TEST(ProcessProtocolTest, EveryMessageTypeRoundTrips) {
  {
    HelloMessage msg{7, 12345};
    HelloMessage out;
    ASSERT_TRUE(DecodeHello(EncodeHello(msg), &out).ok());
    EXPECT_EQ(out.worker, 7);
    EXPECT_EQ(out.pid, 12345);
  }
  {
    HeartbeatMessage msg{3, 99};
    HeartbeatMessage out;
    ASSERT_TRUE(DecodeHeartbeat(EncodeHeartbeat(msg), &out).ok());
    EXPECT_EQ(out.worker, 3);
    EXPECT_EQ(out.sequence, 99);
  }
  {
    ResultMessage msg;
    msg.job = TestJob();
    msg.result.objective = 0.125;
    msg.result.test_objective = 0.25;
    msg.result.cost_seconds = 1.5;
    ResultMessage out;
    ASSERT_TRUE(DecodeResultMessage(EncodeResultMessage(msg), &out).ok());
    ExpectSameJob(msg.job, out.job);
    EXPECT_EQ(out.result.objective, 0.125);
    EXPECT_EQ(out.result.test_objective, 0.25);
    EXPECT_EQ(out.result.cost_seconds, 1.5);
  }
  {
    FailureMessage msg;
    msg.job_id = 421;
    msg.attempt = 2;
    msg.message = "oom";
    FailureMessage out;
    ASSERT_TRUE(DecodeFailureMessage(EncodeFailureMessage(msg), &out).ok());
    EXPECT_EQ(out.job_id, 421);
    EXPECT_EQ(out.attempt, 2);
    EXPECT_EQ(out.message, "oom");
  }
  {
    JobMessage msg;
    msg.job = TestJob();
    msg.inject_crash = true;
    JobMessage out;
    ASSERT_TRUE(DecodeJobMessage(EncodeJobMessage(msg), &out).ok());
    ExpectSameJob(msg.job, out.job);
    EXPECT_TRUE(out.inject_crash);
  }
}

TEST(ProcessProtocolTest, TagsAreCheckedAndNamed) {
  ProcessMessage type;
  ASSERT_TRUE(ProcessMessageTypeOf(EncodeShutdown(), &type).ok());
  EXPECT_EQ(type, ProcessMessage::kShutdown);
  EXPECT_STREQ("shutdown", ProcessMessageName(type));
  ASSERT_TRUE(ProcessMessageTypeOf(EncodeHello({1, 2}), &type).ok());
  EXPECT_EQ(type, ProcessMessage::kHello);

  // Decoders reject payloads of the wrong type.
  HelloMessage hello;
  EXPECT_FALSE(DecodeHello(EncodeShutdown(), &hello).ok());
  JobMessage job;
  EXPECT_FALSE(DecodeJobMessage(EncodeHello({1, 2}), &job).ok());
  EXPECT_FALSE(ProcessMessageTypeOf("", &type).ok());
}

/// Framing fixture: a real socketpair, like the backend uses.
class FramingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  void CloseWriter() {
    ::close(fds_[1]);
    fds_[1] = -1;
  }
  int fds_[2] = {-1, -1};
};

TEST_F(FramingTest, FramesCrossTheSocketIntact) {
  const std::string first = EncodeHello({5, 777});
  const std::string second = EncodeHeartbeat({5, 1});
  ASSERT_TRUE(WriteFrame(fds_[1], first).ok());
  ASSERT_TRUE(WriteFrame(fds_[1], second).ok());
  std::string payload;
  ASSERT_TRUE(ReadFrame(fds_[0], &payload).ok());
  EXPECT_EQ(payload, first);
  ASSERT_TRUE(ReadFrame(fds_[0], &payload).ok());
  EXPECT_EQ(payload, second);
}

TEST_F(FramingTest, CleanEofIsNotFound) {
  ASSERT_TRUE(WriteFrame(fds_[1], EncodeShutdown()).ok());
  CloseWriter();
  std::string payload;
  ASSERT_TRUE(ReadFrame(fds_[0], &payload).ok());
  EXPECT_EQ(ReadFrame(fds_[0], &payload).code(), StatusCode::kNotFound);
}

TEST_F(FramingTest, TornFrameIsDataLoss) {
  // The peer died mid-write: only half the frame made it out.
  std::string frame;
  AppendRecord(EncodeHello({5, 777}), &frame);
  const std::string half = frame.substr(0, frame.size() / 2);
  ASSERT_EQ(::write(fds_[1], half.data(), half.size()),
            static_cast<ssize_t>(half.size()));
  CloseWriter();
  std::string payload;
  EXPECT_EQ(ReadFrame(fds_[0], &payload).code(), StatusCode::kDataLoss);
}

TEST_F(FramingTest, CorruptPayloadIsDataLoss) {
  std::string frame;
  AppendRecord(EncodeHello({5, 777}), &frame);
  frame.back() = static_cast<char>(frame.back() ^ 0x40);
  ASSERT_EQ(::write(fds_[1], frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));
  std::string payload;
  EXPECT_EQ(ReadFrame(fds_[0], &payload).code(), StatusCode::kDataLoss);
}

TEST_F(FramingTest, WriteToDeadPeerFailsWithoutSigpipe) {
  ::close(fds_[0]);
  fds_[0] = -1;
  // Without MSG_NOSIGNAL this would raise SIGPIPE and kill the test.
  Status status = WriteFrame(fds_[1], EncodeShutdown());
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace hypertune
