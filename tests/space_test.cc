#include "src/config/space.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/config/configuration.h"

namespace hypertune {
namespace {

ConfigurationSpace MixedSpace() {
  ConfigurationSpace space;
  EXPECT_TRUE(space.Add(Parameter::Float("lr", 1e-3, 1.0, true)).ok());
  EXPECT_TRUE(space.Add(Parameter::Int("depth", 3, 12)).ok());
  EXPECT_TRUE(space.Add(Parameter::Categorical("op", {"a", "b", "c"})).ok());
  EXPECT_TRUE(space.Add(Parameter::Float("mom", 0.5, 0.99)).ok());
  return space;
}

TEST(SpaceTest, AddRejectsDuplicateNames) {
  ConfigurationSpace space;
  EXPECT_TRUE(space.Add(Parameter::Float("x", 0, 1)).ok());
  EXPECT_EQ(space.Add(Parameter::Int("x", 0, 1)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(space.size(), 1u);
}

TEST(SpaceTest, IndexOf) {
  ConfigurationSpace space = MixedSpace();
  Result<size_t> idx = space.IndexOf("op");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 2u);
  EXPECT_FALSE(space.IndexOf("missing").ok());
}

TEST(SpaceTest, SampleIsValid) {
  ConfigurationSpace space = MixedSpace();
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    Configuration c = space.Sample(&rng);
    EXPECT_TRUE(space.Validate(c).ok());
  }
}

TEST(SpaceTest, ValidateRejectsWrongArity) {
  ConfigurationSpace space = MixedSpace();
  EXPECT_FALSE(space.Validate(Configuration({0.1})).ok());
}

TEST(SpaceTest, EncodeDecodeRoundTrip) {
  ConfigurationSpace space = MixedSpace();
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    Configuration c = space.Sample(&rng);
    std::vector<double> unit = space.Encode(c);
    ASSERT_EQ(unit.size(), space.size());
    for (double u : unit) {
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.0);
    }
    Configuration back = space.Decode(unit);
    EXPECT_TRUE(space.Validate(back).ok());
    // Discrete coordinates are exactly recovered.
    EXPECT_DOUBLE_EQ(back[1], c[1]);
    EXPECT_DOUBLE_EQ(back[2], c[2]);
    EXPECT_NEAR(back[0], c[0], 1e-9 * (c[0] + 1.0));
  }
}

TEST(SpaceTest, NeighborChangesRequestedDimensions) {
  ConfigurationSpace space = MixedSpace();
  Rng rng(3);
  Configuration base = space.Sample(&rng);
  for (int i = 0; i < 100; ++i) {
    Configuration n = space.Neighbor(base, 0.2, 1, &rng);
    EXPECT_TRUE(space.Validate(n).ok());
    int changed = 0;
    for (size_t d = 0; d < space.size(); ++d) {
      if (n[d] != base[d]) ++changed;
    }
    EXPECT_LE(changed, 1);
  }
}

TEST(SpaceTest, CardinalityDiscreteOnly) {
  ConfigurationSpace space;
  ASSERT_TRUE(space.Add(Parameter::Int("i", 1, 4)).ok());
  ASSERT_TRUE(space.Add(Parameter::Categorical("c", {"a", "b", "c"})).ok());
  EXPECT_EQ(space.Cardinality(), 12u);
  ASSERT_TRUE(space.Add(Parameter::Float("f", 0.0, 1.0)).ok());
  EXPECT_EQ(space.Cardinality(), 0u);
}

TEST(SpaceTest, FormatContainsNamesAndValues) {
  ConfigurationSpace space = MixedSpace();
  Configuration c({0.1, 5.0, 2.0, 0.9});
  std::string text = space.Format(c);
  EXPECT_NE(text.find("lr=0.1"), std::string::npos);
  EXPECT_NE(text.find("depth=5"), std::string::npos);
  EXPECT_NE(text.find("op=c"), std::string::npos);
}

TEST(ConfigurationTest, HashEqualityContract) {
  Configuration a({1.0, 2.0, 3.0});
  Configuration b({1.0, 2.0, 3.0});
  Configuration c({1.0, 2.0, 3.5});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, c);
  EXPECT_NE(a.Hash(), c.Hash());  // overwhelmingly likely
}

TEST(ConfigurationTest, NegativeZeroNormalized) {
  Configuration a({0.0});
  Configuration b({-0.0});
  EXPECT_EQ(a, b);  // IEEE equality
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(ConfigurationTest, OrderMatters) {
  Configuration a({1.0, 2.0});
  Configuration b({2.0, 1.0});
  EXPECT_NE(a, b);
  EXPECT_NE(a.Hash(), b.Hash());
}

}  // namespace
}  // namespace hypertune
