#include "src/surrogate/mfes_ensemble.h"

#include <gtest/gtest.h>

namespace hypertune {
namespace {

/// A stub surrogate with fixed predictions, for exact Eq. (3) checks.
class StubSurrogate : public Surrogate {
 public:
  StubSurrogate(double mean, double variance, bool fitted = true)
      : mean_(mean), variance_(variance), fitted_(fitted) {}

  Status Fit(const std::vector<std::vector<double>>&,
             const std::vector<double>&) override {
    fitted_ = true;
    return Status::Ok();
  }
  Prediction Predict(const std::vector<double>&) const override {
    return Prediction{mean_, variance_};
  }
  bool fitted() const override { return fitted_; }
  size_t num_observations() const override { return fitted_ ? 10 : 0; }

 private:
  double mean_;
  double variance_;
  bool fitted_;
};

TEST(MfesEnsembleTest, Equation3WeightedBagging) {
  StubSurrogate m1(1.0, 4.0);
  StubSurrogate m2(3.0, 1.0);
  MfesEnsemble ensemble;
  ensemble.SetMembers({&m1, &m2}, {0.25, 0.75});
  ASSERT_TRUE(ensemble.fitted());
  Prediction p = ensemble.Predict({0.5});
  // mu = 0.25*1 + 0.75*3 = 2.5 ; mixture-of-Gaussians second moment:
  // sigma^2 = 0.25*(4+1) + 0.75*(1+9) - 2.5^2 = 2.5.
  EXPECT_DOUBLE_EQ(p.mean, 2.5);
  EXPECT_DOUBLE_EQ(p.variance, 2.5);
}

TEST(MfesEnsembleTest, DisagreeingMembersInflateVariance) {
  // Regression: the ensemble variance was the weighted sum of member
  // variances (sum w_i^2 sigma_i^2), which is zero when every member is
  // certain — even when the members disagree. The mixture form keeps the
  // between-member spread: two confident members at 1 and 3 give
  // 0.5*(0+1) + 0.5*(0+9) - 2^2 = 1.
  StubSurrogate m1(1.0, 0.0);
  StubSurrogate m2(3.0, 0.0);
  MfesEnsemble ensemble;
  ensemble.SetMembers({&m1, &m2}, {0.5, 0.5});
  Prediction p = ensemble.Predict({0.0});
  EXPECT_DOUBLE_EQ(p.mean, 2.0);
  EXPECT_DOUBLE_EQ(p.variance, 1.0);
}

TEST(MfesEnsembleTest, WeightsAreNormalized) {
  StubSurrogate m1(2.0, 1.0);
  StubSurrogate m2(4.0, 1.0);
  MfesEnsemble ensemble;
  ensemble.SetMembers({&m1, &m2}, {2.0, 6.0});  // -> 0.25 / 0.75
  Prediction p = ensemble.Predict({0.0});
  EXPECT_DOUBLE_EQ(p.mean, 0.25 * 2.0 + 0.75 * 4.0);
  EXPECT_DOUBLE_EQ(ensemble.effective_weights()[0], 0.25);
  EXPECT_DOUBLE_EQ(ensemble.effective_weights()[1], 0.75);
}

TEST(MfesEnsembleTest, UnfittedMembersAreExcluded) {
  StubSurrogate fitted(1.0, 1.0);
  StubSurrogate unfitted(100.0, 1.0, /*fitted=*/false);
  MfesEnsemble ensemble;
  ensemble.SetMembers({&unfitted, &fitted}, {0.9, 0.1});
  ASSERT_TRUE(ensemble.fitted());
  // All weight collapses onto the fitted member.
  EXPECT_DOUBLE_EQ(ensemble.Predict({0.0}).mean, 1.0);
}

TEST(MfesEnsembleTest, NullMembersAreExcluded) {
  StubSurrogate fitted(2.0, 1.0);
  MfesEnsemble ensemble;
  ensemble.SetMembers({nullptr, &fitted}, {0.5, 0.5});
  ASSERT_TRUE(ensemble.fitted());
  EXPECT_DOUBLE_EQ(ensemble.Predict({0.0}).mean, 2.0);
}

TEST(MfesEnsembleTest, ZeroWeightsFallBackToUniform) {
  StubSurrogate m1(1.0, 1.0);
  StubSurrogate m2(3.0, 1.0);
  MfesEnsemble ensemble;
  ensemble.SetMembers({&m1, &m2}, {0.0, 0.0});
  ASSERT_TRUE(ensemble.fitted());
  EXPECT_DOUBLE_EQ(ensemble.Predict({0.0}).mean, 2.0);
}

TEST(MfesEnsembleTest, NotFittedWithoutUsableMembers) {
  StubSurrogate unfitted(1.0, 1.0, /*fitted=*/false);
  MfesEnsemble ensemble;
  ensemble.SetMembers({&unfitted}, {1.0});
  EXPECT_FALSE(ensemble.fitted());
}

TEST(MfesEnsembleTest, DirectFitIsRefused) {
  MfesEnsemble ensemble;
  EXPECT_EQ(ensemble.Fit({{0.1}}, {1.0}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(MfesEnsembleTest, NumObservationsSumsMembers) {
  StubSurrogate m1(1.0, 1.0);
  StubSurrogate m2(2.0, 1.0);
  MfesEnsemble ensemble;
  ensemble.SetMembers({&m1, &m2}, {0.5, 0.5});
  EXPECT_EQ(ensemble.num_observations(), 20u);
}

TEST(MfesEnsembleTest, VarianceHasFloor) {
  StubSurrogate m1(1.0, 0.0);
  MfesEnsemble ensemble;
  ensemble.SetMembers({&m1}, {1.0});
  EXPECT_GT(ensemble.Predict({0.0}).variance, 0.0);
}

}  // namespace
}  // namespace hypertune
