#include "src/surrogate/acquisition.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/statistics.h"

namespace hypertune {
namespace {

TEST(AcquisitionTest, EiClosedFormValue) {
  Prediction p{1.0, 4.0};  // mean 1, sigma 2
  double best = 2.0;
  double xi = 0.0;
  double z = (best - p.mean) / 2.0;  // 0.5
  double expected = (best - p.mean) * NormalCdf(z) + 2.0 * NormalPdf(z);
  EXPECT_NEAR(ExpectedImprovement(p, best, xi), expected, 1e-12);
}

TEST(AcquisitionTest, EiZeroSigmaReducesToImprovement) {
  EXPECT_DOUBLE_EQ(ExpectedImprovement({1.0, 0.0}, 3.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(ExpectedImprovement({5.0, 0.0}, 3.0, 0.0), 0.0);
}

TEST(AcquisitionTest, EiIsNonNegative) {
  for (double mean : {-2.0, 0.0, 5.0}) {
    for (double var : {0.01, 1.0, 9.0}) {
      EXPECT_GE(ExpectedImprovement({mean, var}, 0.0), 0.0);
    }
  }
}

TEST(AcquisitionTest, EiIncreasesWithVarianceAtEqualMean) {
  double best = 0.0;
  double low = ExpectedImprovement({1.0, 0.25}, best);
  double high = ExpectedImprovement({1.0, 4.0}, best);
  EXPECT_GT(high, low);
}

TEST(AcquisitionTest, EiDecreasesWithMean) {
  double best = 0.0;
  EXPECT_GT(ExpectedImprovement({-1.0, 1.0}, best),
            ExpectedImprovement({1.0, 1.0}, best));
}

TEST(AcquisitionTest, PiClosedForm) {
  Prediction p{0.0, 1.0};
  // P(f < best - xi) with best = 1, xi = 0 -> Phi(1).
  EXPECT_NEAR(ProbabilityOfImprovement(p, 1.0, 0.0), NormalCdf(1.0), 1e-12);
}

TEST(AcquisitionTest, PiZeroSigmaIsStep) {
  EXPECT_DOUBLE_EQ(ProbabilityOfImprovement({0.0, 0.0}, 1.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ProbabilityOfImprovement({2.0, 0.0}, 1.0, 0.0), 0.0);
}

TEST(AcquisitionTest, LcbPrefersLowMeanAndHighVariance) {
  EXPECT_GT(NegativeLowerConfidenceBound({0.0, 1.0}, 2.0),
            NegativeLowerConfidenceBound({1.0, 1.0}, 2.0));
  EXPECT_GT(NegativeLowerConfidenceBound({0.0, 4.0}, 2.0),
            NegativeLowerConfidenceBound({0.0, 1.0}, 2.0));
}

TEST(AcquisitionTest, LcbClosedForm) {
  EXPECT_DOUBLE_EQ(NegativeLowerConfidenceBound({3.0, 4.0}, 2.0),
                   -(3.0 - 2.0 * 2.0));
}

struct AcqCase {
  AcquisitionType type;
};

class AcquisitionDispatchTest : public ::testing::TestWithParam<AcqCase> {};

TEST_P(AcquisitionDispatchTest, DispatchMatchesDirectCall) {
  AcquisitionOptions options;
  options.type = GetParam().type;
  options.xi = 0.02;
  options.kappa = 1.7;
  Prediction p{0.5, 2.0};
  double best = 1.0;
  double via_dispatch = AcquisitionValue(p, best, options);
  double direct = 0.0;
  switch (options.type) {
    case AcquisitionType::kExpectedImprovement:
      direct = ExpectedImprovement(p, best, options.xi);
      break;
    case AcquisitionType::kProbabilityOfImprovement:
      direct = ProbabilityOfImprovement(p, best, options.xi);
      break;
    case AcquisitionType::kLowerConfidenceBound:
      direct = NegativeLowerConfidenceBound(p, options.kappa);
      break;
  }
  EXPECT_DOUBLE_EQ(via_dispatch, direct);
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, AcquisitionDispatchTest,
    ::testing::Values(AcqCase{AcquisitionType::kExpectedImprovement},
                      AcqCase{AcquisitionType::kProbabilityOfImprovement},
                      AcqCase{AcquisitionType::kLowerConfidenceBound}));

/// Property sweep: EI monotonically decreases as the predicted mean rises.
class EiMonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(EiMonotonicityTest, DecreasingInMean) {
  double variance = GetParam();
  double last = ExpectedImprovement({-3.0, variance}, 0.0);
  for (double mean = -2.5; mean <= 3.0; mean += 0.5) {
    double v = ExpectedImprovement({mean, variance}, 0.0);
    EXPECT_LE(v, last + 1e-12) << "variance " << variance;
    last = v;
  }
}

INSTANTIATE_TEST_SUITE_P(VarianceSweep, EiMonotonicityTest,
                         ::testing::Values(0.01, 0.1, 1.0, 4.0, 25.0));

}  // namespace
}  // namespace hypertune
