#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/optimizer/random_sampler.h"
#include "src/scheduler/async_bracket_scheduler.h"
#include "src/scheduler/batch_bo_scheduler.h"
#include "src/scheduler/sync_bracket_scheduler.h"

namespace hypertune {
namespace {

ConfigurationSpace WideSpace() {
  ConfigurationSpace space;
  EXPECT_TRUE(space.Add(Parameter::Float("x", 0.0, 1.0)).ok());
  EXPECT_TRUE(space.Add(Parameter::Float("y", 0.0, 1.0)).ok());
  return space;
}

ResourceLadder SmallLadder() {
  ResourceLadder ladder;
  ladder.eta = 3.0;
  ladder.num_levels = 3;
  ladder.max_resource = 9.0;
  return ladder;
}

EvalResult ResultOf(const Job& job) {
  EvalResult result;
  result.objective = job.config[0];  // error = first coordinate
  result.test_objective = job.config[0];
  result.cost_seconds = job.resource;
  return result;
}

class SyncSchedulerTest : public ::testing::Test {
 protected:
  SyncSchedulerTest()
      : space_(WideSpace()),
        store_(3),
        sampler_(&space_, &store_, 1) {}

  BracketSchedulerOptions Options(BracketPolicy policy) {
    BracketSchedulerOptions options;
    options.ladder = SmallLadder();
    options.selector.policy = policy;
    options.selector.fixed_bracket = 1;
    return options;
  }

  ConfigurationSpace space_;
  MeasurementStore store_;
  RandomSampler sampler_;
};

TEST_F(SyncSchedulerTest, IssuesBaseRungThenBarriers) {
  SyncBracketScheduler scheduler(&space_, &store_, &sampler_, nullptr,
                                 Options(BracketPolicy::kFixed));
  // Bracket 1 with K = 3: n1 = ceil(3/3 * 9) = 9 base configurations.
  std::vector<Job> jobs;
  for (int i = 0; i < 9; ++i) {
    std::optional<Job> job = scheduler.NextJob();
    ASSERT_TRUE(job.has_value()) << "job " << i;
    EXPECT_EQ(job->level, 1);
    jobs.push_back(*job);
  }
  // Barrier: rung full, results outstanding.
  EXPECT_FALSE(scheduler.NextJob().has_value());
  // Completing 8 of 9 still leaves the barrier closed.
  for (int i = 0; i < 8; ++i) scheduler.OnJobComplete(jobs[i], ResultOf(jobs[i]));
  EXPECT_FALSE(scheduler.NextJob().has_value());
  // Final completion opens the next rung: 3 promotions at level 2.
  scheduler.OnJobComplete(jobs[8], ResultOf(jobs[8]));
  for (int i = 0; i < 3; ++i) {
    std::optional<Job> job = scheduler.NextJob();
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->level, 2);
    EXPECT_DOUBLE_EQ(job->resume_from, 1.0);
  }
  EXPECT_FALSE(scheduler.NextJob().has_value());
  // Measurements landed in the store at level 1.
  EXPECT_EQ(store_.group(1).size(), 9u);
  // Issued promotions are pending.
  EXPECT_EQ(store_.NumPending(), 3u);
}

TEST_F(SyncSchedulerTest, StartsNextBracketAfterCompletion) {
  SyncBracketScheduler scheduler(&space_, &store_, &sampler_, nullptr,
                                 Options(BracketPolicy::kRoundRobin));
  // Drain bracket 1 completely by completing every job as it is issued.
  int64_t safety = 0;
  while (scheduler.brackets_completed() == 0 && safety++ < 1000) {
    std::optional<Job> job = scheduler.NextJob();
    ASSERT_TRUE(job.has_value());  // single-worker drain never barriers
    scheduler.OnJobComplete(*job, ResultOf(*job));
  }
  EXPECT_EQ(scheduler.current_bracket(), 2);  // round robin moved on
  std::optional<Job> job = scheduler.NextJob();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->level, 2);  // bracket 2 starts at level 2
}

TEST_F(SyncSchedulerTest, NeverExhausted) {
  SyncBracketScheduler scheduler(&space_, &store_, &sampler_, nullptr,
                                 Options(BracketPolicy::kFixed));
  EXPECT_FALSE(scheduler.Exhausted());
}

class AsyncSchedulerTest : public ::testing::Test {
 protected:
  AsyncSchedulerTest()
      : space_(WideSpace()),
        store_(3),
        sampler_(&space_, &store_, 2) {}

  BracketSchedulerOptions Options(bool delayed, BracketPolicy policy) {
    BracketSchedulerOptions options;
    options.ladder = SmallLadder();
    options.selector.policy = policy;
    options.selector.fixed_bracket = 1;
    options.delayed_promotion = delayed;
    return options;
  }

  ConfigurationSpace space_;
  MeasurementStore store_;
  RandomSampler sampler_;
};

TEST_F(AsyncSchedulerTest, AlwaysProvidesWork) {
  AsyncBracketScheduler scheduler(
      &space_, &store_, &sampler_, nullptr,
      Options(false, BracketPolicy::kFixed));
  // No barrier, ever: 200 consecutive NextJob calls all succeed even with
  // nothing completing (workers would all be busy).
  std::vector<Job> jobs;
  for (int i = 0; i < 200; ++i) {
    std::optional<Job> job = scheduler.NextJob();
    ASSERT_TRUE(job.has_value());
    jobs.push_back(*job);
  }
  EXPECT_EQ(store_.NumPending(), 200u);
  for (const Job& job : jobs) scheduler.OnJobComplete(job, ResultOf(job));
  EXPECT_EQ(store_.NumPending(), 0u);
}

TEST_F(AsyncSchedulerTest, PromotesAfterCompletions) {
  AsyncBracketScheduler scheduler(
      &space_, &store_, &sampler_, nullptr,
      Options(false, BracketPolicy::kFixed));
  // Complete jobs one at a time: promotions appear once eta results exist.
  int promotions = 0;
  for (int i = 0; i < 30; ++i) {
    std::optional<Job> job = scheduler.NextJob();
    ASSERT_TRUE(job.has_value());
    if (job->level > 1) ++promotions;
    scheduler.OnJobComplete(*job, ResultOf(*job));
  }
  EXPECT_GT(promotions, 0);
  EXPECT_EQ(scheduler.promotions_issued(), promotions);
  EXPECT_GT(store_.group(2).size(), 0u);
}

TEST_F(AsyncSchedulerTest, DelayedPromotesFewer) {
  auto count_promotions = [&](bool delayed, uint64_t seed) {
    MeasurementStore store(3);
    RandomSampler sampler(&space_, &store, seed);
    AsyncBracketScheduler scheduler(
        &space_, &store, &sampler, nullptr,
        Options(delayed, BracketPolicy::kFixed));
    for (int i = 0; i < 120; ++i) {
      std::optional<Job> job = scheduler.NextJob();
      EXPECT_TRUE(job.has_value());
      scheduler.OnJobComplete(*job, ResultOf(*job));
    }
    return scheduler.promotions_issued();
  };
  EXPECT_LT(count_promotions(true, 7), count_promotions(false, 7));
}

TEST_F(AsyncSchedulerTest, RoundRobinSpreadsAdmissionsAcrossBrackets) {
  AsyncBracketScheduler scheduler(
      &space_, &store_, &sampler_, nullptr,
      Options(false, BracketPolicy::kRoundRobin));
  for (int i = 0; i < 60; ++i) {
    std::optional<Job> job = scheduler.NextJob();
    ASSERT_TRUE(job.has_value());
    scheduler.OnJobComplete(*job, ResultOf(*job));
  }
  std::vector<int64_t> admissions = scheduler.admissions_per_bracket();
  ASSERT_EQ(admissions.size(), 3u);  // one persistent bracket per level
  for (int64_t count : admissions) EXPECT_GT(count, 0);
  // Bracket 3's admissions land directly at full fidelity.
  EXPECT_GT(store_.group(3).size(), 0u);
}

TEST(BatchBoSchedulerTest, SyncBarrierBetweenBatches) {
  ConfigurationSpace space = WideSpace();
  MeasurementStore store(1);
  RandomSampler sampler(&space, &store, 3);
  BatchBoSchedulerOptions options;
  options.synchronous = true;
  options.batch_size = 4;
  options.resource = 9.0;
  options.level = 1;
  BatchBoScheduler scheduler(&store, &sampler, options);

  std::vector<Job> batch;
  for (int i = 0; i < 4; ++i) {
    std::optional<Job> job = scheduler.NextJob();
    ASSERT_TRUE(job.has_value());
    EXPECT_DOUBLE_EQ(job->resource, 9.0);
    batch.push_back(*job);
  }
  EXPECT_FALSE(scheduler.NextJob().has_value());  // barrier
  for (int i = 0; i < 3; ++i) {
    scheduler.OnJobComplete(batch[i], ResultOf(batch[i]));
    EXPECT_FALSE(scheduler.NextJob().has_value());  // still waiting
  }
  scheduler.OnJobComplete(batch[3], ResultOf(batch[3]));
  EXPECT_TRUE(scheduler.NextJob().has_value());  // next batch opens
}

TEST(BatchBoSchedulerTest, AsyncNeverBarriers) {
  ConfigurationSpace space = WideSpace();
  MeasurementStore store(1);
  RandomSampler sampler(&space, &store, 4);
  BatchBoSchedulerOptions options;
  options.synchronous = false;
  options.resource = 9.0;
  options.level = 1;
  BatchBoScheduler scheduler(&store, &sampler, options);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(scheduler.NextJob().has_value());
  }
}

TEST(BatchBoSchedulerTest, RecordsMeasurements) {
  ConfigurationSpace space = WideSpace();
  MeasurementStore store(1);
  RandomSampler sampler(&space, &store, 5);
  BatchBoSchedulerOptions options;
  options.resource = 9.0;
  options.level = 1;
  BatchBoScheduler scheduler(&store, &sampler, options);
  std::optional<Job> job = scheduler.NextJob();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(store.NumPending(), 1u);
  scheduler.OnJobComplete(*job, ResultOf(*job));
  EXPECT_EQ(store.NumPending(), 0u);
  EXPECT_EQ(store.group(1).size(), 1u);
}

}  // namespace
}  // namespace hypertune
