#include "src/common/lock_order.h"

#include <gtest/gtest.h>

#include "src/common/thread_annotations.h"

namespace hypertune {
namespace {

/// Restores the checker's enabled state even when an assertion fails.
class LockdepEnabledGuard {
 public:
  explicit LockdepEnabledGuard(bool enabled) {
    lockdep::SetEnabledForTesting(enabled);
  }
  ~LockdepEnabledGuard() { lockdep::SetEnabledForTesting(true); }
};

TEST(LockRankTable, RanksAreStrictlyMonotone) {
  const LockRank order[] = {
      LockRank::kClusterRunState,   LockRank::kProcessInbox,
      LockRank::kProcessWorkerIo,   LockRank::kThreadPool,
      LockRank::kJournal,           LockRank::kStoreGroups,
      LockRank::kStorePendingShard, LockRank::kTraceRecorder,
      LockRank::kMetricsRegistry,   LockRank::kLogSink,
  };
  LockRank prev = LockRank::kUnranked;
  for (LockRank rank : order) {
    EXPECT_LT(static_cast<int>(prev), static_cast<int>(rank))
        << LockRankName(rank) << " does not increase over "
        << LockRankName(prev);
    prev = rank;
  }
}

TEST(LockRankTable, EveryRankHasAStableName) {
  EXPECT_STREQ("unranked", LockRankName(LockRank::kUnranked));
  EXPECT_STREQ("cluster.run_state", LockRankName(LockRank::kClusterRunState));
  EXPECT_STREQ("process.inbox", LockRankName(LockRank::kProcessInbox));
  EXPECT_STREQ("process.worker_io", LockRankName(LockRank::kProcessWorkerIo));
  EXPECT_STREQ("thread_pool.queue", LockRankName(LockRank::kThreadPool));
  EXPECT_STREQ("journal.stream", LockRankName(LockRank::kJournal));
  EXPECT_STREQ("store.groups", LockRankName(LockRank::kStoreGroups));
  EXPECT_STREQ("store.pending_shard",
               LockRankName(LockRank::kStorePendingShard));
  EXPECT_STREQ("obs.trace", LockRankName(LockRank::kTraceRecorder));
  EXPECT_STREQ("obs.metrics", LockRankName(LockRank::kMetricsRegistry));
  EXPECT_STREQ("log.sink", LockRankName(LockRank::kLogSink));
}

TEST(LockOrder, RankedMutexCarriesRankAndName) {
  Mutex mu(LockRank::kJournal, "journal.stream");
  EXPECT_EQ(LockRank::kJournal, mu.rank());
  EXPECT_STREQ("journal.stream", mu.name());

  Mutex unranked;
  EXPECT_EQ(LockRank::kUnranked, unranked.rank());
  EXPECT_EQ(nullptr, unranked.name());
}

TEST(LockOrder, InOrderAcquisitionIsClean) {
  if (!lockdep::CompiledIn()) GTEST_SKIP() << "lockdep compiled out";
  Mutex outer(LockRank::kClusterRunState, "cluster.run_state");
  Mutex middle(LockRank::kStoreGroups, "store.groups");
  Mutex inner(LockRank::kLogSink, "log.sink");
  {
    MutexLock a(outer);
    EXPECT_EQ(1, lockdep::HeldRankedLocks());
    MutexLock b(middle);
    MutexLock c(inner);
    EXPECT_EQ(3, lockdep::HeldRankedLocks());
  }
  EXPECT_EQ(0, lockdep::HeldRankedLocks());
}

TEST(LockOrder, ReacquiringAfterFullReleaseIsClean) {
  if (!lockdep::CompiledIn()) GTEST_SKIP() << "lockdep compiled out";
  Mutex outer(LockRank::kJournal, "journal.stream");
  Mutex inner(LockRank::kMetricsRegistry, "obs.metrics");
  // Sequential (non-nested) use in any order is legal; only *held-while-
  // acquiring* ordering is constrained.
  {
    MutexLock a(inner);
  }
  {
    MutexLock b(outer);
    MutexLock c(inner);
  }
  EXPECT_EQ(0, lockdep::HeldRankedLocks());
}

TEST(LockOrder, UnrankedMutexesAreExemptFromOrdering) {
  if (!lockdep::CompiledIn()) GTEST_SKIP() << "lockdep compiled out";
  Mutex ranked(LockRank::kLogSink, "log.sink");
  Mutex unranked;
  // An unranked lock under (or over) any ranked lock never trips the
  // checker — it is simply not tracked.
  MutexLock a(ranked);
  MutexLock b(unranked);
  EXPECT_EQ(1, lockdep::HeldRankedLocks());
}

TEST(LockOrder, DisabledCheckerIsANoOp) {
  if (!lockdep::CompiledIn()) GTEST_SKIP() << "lockdep compiled out";
  LockdepEnabledGuard guard(false);
  Mutex inner(LockRank::kLogSink, "log.sink");
  Mutex outer(LockRank::kClusterRunState, "cluster.run_state");
  // Inverted order: would abort with the checker enabled.
  MutexLock a(inner);
  MutexLock b(outer);
  EXPECT_EQ(0, lockdep::HeldRankedLocks());
}

TEST(LockOrder, InversionIsHarmlessWhenCompiledOut) {
  if (lockdep::CompiledIn()) GTEST_SKIP() << "lockdep compiled in";
  // Release builds: the hook does not exist, so even a real inversion is
  // invisible (and free). The death test below covers checked builds.
  Mutex inner(LockRank::kLogSink, "log.sink");
  Mutex outer(LockRank::kClusterRunState, "cluster.run_state");
  MutexLock a(inner);
  MutexLock b(outer);
  EXPECT_EQ(0, lockdep::HeldRankedLocks());
}

using LockOrderDeathTest = ::testing::Test;

TEST(LockOrderDeathTest, InversionAbortsNamingBothLocks) {
  if (!lockdep::CompiledIn()) GTEST_SKIP() << "lockdep compiled out";
  Mutex journal(LockRank::kJournal, "journal.stream");
  Mutex run_state(LockRank::kClusterRunState, "cluster.run_state");
  EXPECT_DEATH(
      {
        MutexLock a(journal);
        MutexLock b(run_state);  // outer rank acquired under an inner lock
      },
      "lockdep.*acquiring \"cluster\\.run_state\".*"
      "while holding \"journal\\.stream\"");
}

TEST(LockOrderDeathTest, SameRankNestingAborts) {
  if (!lockdep::CompiledIn()) GTEST_SKIP() << "lockdep compiled out";
  // The 16 pending shards share one rank precisely because no path may
  // hold two shards at once; the checker turns that comment into a trap.
  Mutex shard_a(LockRank::kStorePendingShard, "store.pending_shard");
  Mutex shard_b(LockRank::kStorePendingShard, "store.pending_shard");
  EXPECT_DEATH(
      {
        MutexLock a(shard_a);
        MutexLock b(shard_b);
      },
      "lockdep.*acquiring \"store\\.pending_shard\".*"
      "while holding \"store\\.pending_shard\"");
}

}  // namespace
}  // namespace hypertune
