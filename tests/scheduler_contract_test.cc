#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/optimizer/random_sampler.h"
#include "src/problems/counting_ones.h"
#include "src/runtime/scheduler_contract.h"
#include "src/runtime/simulated_cluster.h"
#include "src/scheduler/async_bracket_scheduler.h"

namespace hypertune {
namespace {

/// Inner scheduler that tolerates any call sequence: the checker under
/// test is fed deliberately malformed traffic, so the wrapped scheduler
/// must never abort on its own.
class ScriptedScheduler : public SchedulerInterface {
 public:
  std::optional<Job> NextJob() override {
    if (script_.empty()) return std::nullopt;
    std::optional<Job> job = script_.front();
    script_.pop_front();
    return job;
  }
  void OnJobComplete(const Job& job, const EvalResult& result) override {
    (void)job;
    (void)result;
    ++completions;
  }
  bool OnJobFailed(const Job& job, const FailureInfo& info) override {
    (void)job;
    (void)info;
    return requeue;
  }
  bool Exhausted() const override { return exhausted; }

  void Push(const Job& job) { script_.push_back(job); }

  bool requeue = false;
  bool exhausted = false;
  int completions = 0;

 private:
  std::deque<std::optional<Job>> script_;
};

Job MakeJob(int64_t id, int attempt = 1) {
  Job job;
  job.job_id = id;
  job.level = 1;
  job.resource = 1.0;
  job.attempt = attempt;
  return job;
}

ContractCheckerOptions Collecting() {
  ContractCheckerOptions options;
  options.abort_on_violation = false;
  return options;
}

/// True when some collected violation mentions `needle`.
bool HasViolation(const SchedulerContractChecker& checker,
                  const std::string& needle) {
  for (const std::string& violation : checker.violations()) {
    if (violation.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(SchedulerContractCheckerTest, CleanSequenceHasNoViolations) {
  ScriptedScheduler inner;
  inner.Push(MakeJob(0));
  inner.Push(MakeJob(1));
  SchedulerContractChecker checker(&inner, Collecting());

  std::optional<Job> a = checker.NextJob();
  std::optional<Job> b = checker.NextJob();
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(checker.outstanding_jobs(), 2);

  checker.OnJobComplete(*a, EvalResult{});

  // A failed attempt that the scheduler requeues, then the retry completes.
  inner.requeue = true;
  FailureInfo failure;
  failure.attempt = 1;
  failure.retries_remaining = 1;
  EXPECT_TRUE(checker.OnJobFailed(*b, failure));
  Job retry = *b;
  retry.attempt = 2;
  checker.OnJobComplete(retry, EvalResult{});

  EXPECT_TRUE(checker.violations().empty())
      << checker.violations().front();
  EXPECT_EQ(checker.outstanding_jobs(), 0);
  EXPECT_EQ(checker.jobs_issued(), 2);
  EXPECT_EQ(inner.completions, 2);
}

TEST(SchedulerContractCheckerTest, DetectsDoubleCompletion) {
  ScriptedScheduler inner;
  inner.Push(MakeJob(7));
  SchedulerContractChecker checker(&inner, Collecting());

  std::optional<Job> job = checker.NextJob();
  ASSERT_TRUE(job.has_value());
  checker.OnJobComplete(*job, EvalResult{});
  checker.OnJobComplete(*job, EvalResult{});

  EXPECT_TRUE(HasViolation(checker, "double completion"));
}

TEST(SchedulerContractCheckerTest, DetectsCompletionForUnknownJob) {
  ScriptedScheduler inner;
  SchedulerContractChecker checker(&inner, Collecting());

  checker.OnJobComplete(MakeJob(42), EvalResult{});

  EXPECT_TRUE(HasViolation(checker, "never issued"));
}

TEST(SchedulerContractCheckerTest, DetectsCompletionAfterAbandonment) {
  ScriptedScheduler inner;
  inner.Push(MakeJob(3));
  SchedulerContractChecker checker(&inner, Collecting());

  std::optional<Job> job = checker.NextJob();
  ASSERT_TRUE(job.has_value());
  inner.requeue = false;  // abandon on first failure
  EXPECT_FALSE(checker.OnJobFailed(*job, FailureInfo{}));
  EXPECT_EQ(checker.outstanding_jobs(), 0);

  checker.OnJobComplete(*job, EvalResult{});

  EXPECT_TRUE(HasViolation(checker, "abandoned"));
}

TEST(SchedulerContractCheckerTest, DetectsStaleAttemptNumber) {
  ScriptedScheduler inner;
  inner.Push(MakeJob(5));
  SchedulerContractChecker checker(&inner, Collecting());

  std::optional<Job> job = checker.NextJob();
  ASSERT_TRUE(job.has_value());
  inner.requeue = true;
  FailureInfo failure;
  failure.attempt = 1;
  EXPECT_TRUE(checker.OnJobFailed(*job, failure));

  // The runtime is now executing attempt 2; completing with the stale
  // attempt-1 job is the bug class where a zombie worker reports late.
  checker.OnJobComplete(*job, EvalResult{});

  EXPECT_TRUE(HasViolation(checker, "stale attempt"));
}

TEST(SchedulerContractCheckerTest, DetectsFailureForUnknownJob) {
  ScriptedScheduler inner;
  SchedulerContractChecker checker(&inner, Collecting());

  checker.OnJobFailed(MakeJob(9), FailureInfo{});

  EXPECT_TRUE(HasViolation(checker, "never issued"));
}

TEST(SchedulerContractCheckerTest, DetectsJobIssuedAfterExhausted) {
  ScriptedScheduler inner;
  SchedulerContractChecker checker(&inner, Collecting());

  inner.exhausted = true;
  EXPECT_TRUE(checker.Exhausted());

  inner.Push(MakeJob(0));
  std::optional<Job> job = checker.NextJob();
  ASSERT_TRUE(job.has_value());

  EXPECT_TRUE(HasViolation(checker, "after Exhausted()"));
}

TEST(SchedulerContractCheckerTest, DetectsExhaustedRegression) {
  ScriptedScheduler inner;
  SchedulerContractChecker checker(&inner, Collecting());

  inner.exhausted = true;
  EXPECT_TRUE(checker.Exhausted());
  inner.exhausted = false;
  EXPECT_FALSE(checker.Exhausted());

  EXPECT_TRUE(HasViolation(checker, "regressed"));
}

TEST(SchedulerContractCheckerTest, DetectsReusedJobId) {
  ScriptedScheduler inner;
  inner.Push(MakeJob(1));
  inner.Push(MakeJob(1));
  SchedulerContractChecker checker(&inner, Collecting());

  EXPECT_TRUE(checker.NextJob().has_value());
  EXPECT_TRUE(checker.NextJob().has_value());

  EXPECT_TRUE(HasViolation(checker, "reused job id"));
}

TEST(SchedulerContractCheckerTest, DetectsSchedulerMintingRetryAttempt) {
  ScriptedScheduler inner;
  inner.Push(MakeJob(2, /*attempt=*/3));
  SchedulerContractChecker checker(&inner, Collecting());

  EXPECT_TRUE(checker.NextJob().has_value());

  EXPECT_TRUE(HasViolation(checker, "attempt 1"));
}

TEST(SchedulerContractCheckerTest, EventTraceRetainsRecentEvents) {
  ScriptedScheduler inner;
  inner.Push(MakeJob(11));
  SchedulerContractChecker checker(&inner, Collecting());

  std::optional<Job> job = checker.NextJob();
  ASSERT_TRUE(job.has_value());
  checker.OnJobComplete(*job, EvalResult{});

  std::string trace = checker.EventTrace();
  EXPECT_NE(trace.find("NextJob -> job 11"), std::string::npos) << trace;
  EXPECT_NE(trace.find("OnJobComplete(job 11"), std::string::npos) << trace;
}

TEST(SchedulerContractCheckerDeathTest, AbortModeDumpsEventSequence) {
  ScriptedScheduler inner;
  inner.Push(MakeJob(7));
  SchedulerContractChecker checker(&inner);  // abort_on_violation = true

  std::optional<Job> job = checker.NextJob();
  ASSERT_TRUE(job.has_value());
  checker.OnJobComplete(*job, EvalResult{});

  EXPECT_DEATH(checker.OnJobComplete(*job, EvalResult{}),
               "scheduler contract violated.*double completion");
}

/// End-to-end conformance: a real scheduler driven by a real backend under
/// a collecting checker reports zero violations. (Both backends also wrap
/// schedulers in an aborting checker by default, so the rest of the suite
/// exercises the same property; this test pins it explicitly.)
TEST(SchedulerContractCheckerTest, RealSchedulerConformsEndToEnd) {
  CountingOnesOptions problem_options;
  problem_options.num_categorical = 2;
  problem_options.num_continuous = 2;
  problem_options.max_samples = 9.0;
  CountingOnes problem(problem_options);

  MeasurementStore store(3);
  RandomSampler sampler(&problem.space(), &store, 1);

  BracketSchedulerOptions options;
  options.ladder.eta = 3.0;
  options.ladder.num_levels = 3;
  options.ladder.max_resource = 9.0;
  options.selector.policy = BracketPolicy::kFixed;
  options.selector.fixed_bracket = 1;
  AsyncBracketScheduler scheduler(&problem.space(), &store, &sampler, nullptr,
                                  options);
  SchedulerContractChecker checker(&scheduler, Collecting());

  ClusterOptions cluster;
  cluster.num_workers = 4;
  cluster.time_budget_seconds = 200.0;
  cluster.faults.crash_probability = 0.2;  // exercise the failure paths
  cluster.faults.max_retries = 1;
  cluster.check_contract = false;  // avoid double wrapping
  RunResult result = SimulatedCluster(cluster).Run(&checker, problem);

  EXPECT_GT(result.history.num_trials(), 0u);
  EXPECT_TRUE(checker.violations().empty()) << checker.violations().front();
}

/// Complexity regression: promotion decisions must stay indexed. Each
/// completion inserts into a rung's order-statistics tree and each decision
/// probes it, so total decision work over N completions is O(N log N) node
/// visits. The old implementation re-sorted and re-scanned a rung's results
/// on every decision — O(N) per decision, O(N^2) total — which exceeds this
/// bound by orders of magnitude at this N.
TEST(SchedulerContractCheckerTest, BracketDecisionWorkStaysLogarithmic) {
  BracketOptions options;
  options.index = 1;
  options.ladder.eta = 3.0;
  options.ladder.num_levels = 4;
  options.ladder.max_resource = 27.0;
  options.synchronous = false;
  options.base_quota = -1;  // unlimited: admission never throttles the loop
  Bracket bracket(options);

  Rng rng(29);
  const int64_t n = 4000;
  int64_t next_job_id = 0;
  int64_t completions = 0;
  std::vector<Job> outstanding;
  for (int64_t i = 0; i < n; ++i) {
    Configuration config(
        std::vector<double>{rng.Uniform(), static_cast<double>(i)});
    outstanding.push_back(bracket.AdmitConfig(config, next_job_id++));
    // Complete everything outstanding, then drain eligible promotions; the
    // interleave keeps every rung's tree growing while decisions run.
    for (const Job& job : outstanding) {
      bracket.OnJobComplete(job, rng.Uniform());
      ++completions;
    }
    outstanding.clear();
    while (std::optional<Job> promo = bracket.NextPromotion(next_job_id)) {
      ++next_job_id;
      outstanding.push_back(*promo);
    }
    bracket.CheckInvariants();
  }

  const double total = static_cast<double>(completions);
  const double bound = 64.0 * total * std::log2(total);
  EXPECT_LT(static_cast<double>(bracket.decision_work()), bound)
      << "decision_work=" << bracket.decision_work()
      << " completions=" << completions;
  // Sanity: the counter is actually measuring something.
  EXPECT_GT(bracket.decision_work(), 0);
}

}  // namespace
}  // namespace hypertune
