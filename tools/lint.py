#!/usr/bin/env python3
"""Repo lint: determinism and hygiene rules clang-tidy cannot express.

Hyper-Tune's golden-history tests pin bit-reproducibility: a run is a pure
function of its seed. That property dies the moment library code reads a
wall clock, an OS entropy source, or the C rand() state — so those are
banned at lint time, everywhere except the two files whose *job* is to
touch them:

  wallclock    std::chrono clock reads (steady_clock, system_clock,
               high_resolution_clock) are allowed only in
               src/runtime/thread_cluster.cc — the real-time backend. The
               simulator and every scheduler/sampler must use simulated
               time and recorded timestamps only.
  unseeded-rng std::random_device, rand(), srand(), time() are allowed
               only in src/common/rng.cc. All randomness flows from the
               run seed through hypertune::Rng.
  raw-stdout   std::cout / printf in library code corrupts machine-read
               report output and interleaves under threads; stdout
               belongs to src/report (and examples/, which the rule does
               not cover). Library diagnostics go through HT_LOG.
  header-guard every header under src/ carries the canonical
               HYPERTUNE_<PATH>_H_ guard (no #pragma once).
  include-order the first include of src/<d>/<f>.cc is its own header
               src/<d>/<f>.h, and every contiguous block of #include
               lines is sorted within its group.

Escape hatch: a line-level annotation `// lint: allow(<rule>)` suppresses
one rule on that line; `// lint: allow-file(<rule>)` anywhere in a file
suppresses the rule for the whole file. Every allowance is deliberate and
reviewable — grep for "lint: allow".

Usage: python3 tools/lint.py [--root DIR]   (exit 1 on any violation)
"""

import argparse
import os
import re
import sys

SOURCE_DIRS = ("src", "tests", "bench", "examples")
SOURCE_EXTS = (".h", ".cc", ".cpp")

ALLOW_LINE = re.compile(r"//\s*lint:\s*allow\(([a-z\-]+)\)")
ALLOW_FILE = re.compile(r"//\s*lint:\s*allow-file\(([a-z\-]+)\)")
INCLUDE = re.compile(r'^#include\s+([<"])([^">]+)[">]')

# (rule, regex, message). Patterns use lookbehinds so e.g. end_time( or
# fputs( never trip the bans on time( and puts(.
DETERMINISM_RULES = [
    ("wallclock", re.compile(r"steady_clock|system_clock|high_resolution_clock"),
     "wall-clock reads are allowed only in src/runtime/thread_cluster.cc; "
     "use simulated time / recorded timestamps"),
    ("unseeded-rng", re.compile(r"std::random_device"),
     "OS entropy breaks seed-reproducibility; derive from hypertune::Rng"),
    ("unseeded-rng", re.compile(r"(?<![\w:.])s?rand\s*\("),
     "C rand()/srand() is hidden global state; derive from hypertune::Rng"),
    ("unseeded-rng", re.compile(r"(?<![\w:.>])time\s*\("),
     "time() is nondeterministic; runs must be pure functions of the seed"),
    ("raw-stdout", re.compile(r"std::cout"),
     "library code must not write stdout (reports own it); use HT_LOG"),
    ("raw-stdout", re.compile(r"(?<![\w:.])f?printf\s*\("),
     "library code must not printf; use HT_LOG or src/report streams"),
]

# file-relative path prefixes exempt from a rule (the files whose job it is)
RULE_EXEMPT = {
    "wallclock": ("src/runtime/thread_cluster.cc",),
    "unseeded-rng": ("src/common/rng.cc",),
    "raw-stdout": ("src/report/",),
}
# Determinism rules police the library only; tests/bench/examples may time
# themselves and print freely.
DETERMINISM_SCOPE = "src/"


def iter_source_files(root):
    for top in SOURCE_DIRS:
        top_path = os.path.join(root, top)
        if not os.path.isdir(top_path):
            continue
        for dirpath, _, filenames in os.walk(top_path):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    full = os.path.join(dirpath, name)
                    yield os.path.relpath(full, root).replace(os.sep, "/")


def strip_comments_and_strings(line):
    """Best-effort removal of string literals and // comments so banned
    identifiers inside messages or docs do not trip the rules."""
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    line = re.sub(r"'(\\.|[^'\\])*'", "''", line)
    cut = line.find("//")
    if cut >= 0:
        line = line[:cut]
    return line


def check_determinism(relpath, lines, file_allows, report):
    if not relpath.startswith(DETERMINISM_SCOPE):
        return
    for rule, pattern, message in DETERMINISM_RULES:
        if any(relpath.startswith(p) for p in RULE_EXEMPT.get(rule, ())):
            continue
        if rule in file_allows:
            continue
        for lineno, raw in enumerate(lines, 1):
            if rule in ALLOW_LINE_CACHE.get((relpath, lineno), ()):
                continue
            if pattern.search(strip_comments_and_strings(raw)):
                report(relpath, lineno, rule, message)


def expected_guard(relpath):
    stem = relpath[len("src/"):] if relpath.startswith("src/") else relpath
    token = re.sub(r"[^A-Za-z0-9]", "_", stem.upper())
    return "HYPERTUNE_" + re.sub(r"_H$", "_H_", token)


def check_header_guard(relpath, lines, file_allows, report):
    if not relpath.startswith("src/") or not relpath.endswith(".h"):
        return
    if "header-guard" in file_allows:
        return
    guard = expected_guard(relpath)
    for lineno, raw in enumerate(lines, 1):
        if "#pragma once" in raw:
            report(relpath, lineno, "header-guard",
                   "use the %s include guard, not #pragma once" % guard)
            return
        if raw.startswith("#ifndef"):
            if raw.split()[1:2] != [guard]:
                report(relpath, lineno, "header-guard",
                       "guard must be %s" % guard)
            elif lineno < len(lines) and not lines[lineno].startswith(
                    "#define %s" % guard):
                report(relpath, lineno + 1, "header-guard",
                       "#define %s must follow the #ifndef" % guard)
            return
        if raw.startswith("#"):
            break
    report(relpath, 1, "header-guard", "missing %s include guard" % guard)


def check_include_order(relpath, lines, file_allows, report):
    if "include-order" in file_allows:
        return
    includes = []  # (lineno, kind, path)
    for lineno, raw in enumerate(lines, 1):
        m = INCLUDE.match(raw)
        if m:
            includes.append((lineno, m.group(1), m.group(2)))

    if relpath.endswith((".cc", ".cpp")) and includes:
        own = re.sub(r"\.(cc|cpp)$", ".h", relpath)
        if own != relpath and os.path.exists(os.path.join(ROOT, own)):
            first = includes[0]
            if first[2] != own:
                report(relpath, first[0], "include-order",
                       "first include must be the file's own header %s" % own)
            else:
                includes = includes[1:]  # own header is its own group

    # Contiguous include lines form a block; within a block each kind
    # (system vs project) must be internally sorted.
    block = []
    prev_lineno = None

    def flush():
        for kind in ('<', '"'):
            paths = [(ln, p) for ln, k, p in block if k == kind]
            for (ln_a, a), (ln_b, b) in zip(paths, paths[1:]):
                if (ln_a, a) in INCLUDE_ALLOWED or (ln_b, b) in INCLUDE_ALLOWED:
                    continue
                if a > b:
                    report(relpath, ln_b, "include-order",
                           '"%s" sorts before "%s"' % (b, a))
        block.clear()

    for entry in includes:
        lineno = entry[0]
        if prev_lineno is not None and lineno != prev_lineno + 1:
            flush()
        block.append(entry)
        prev_lineno = lineno
    flush()


ALLOW_LINE_CACHE = {}
INCLUDE_ALLOWED = set()
ROOT = "."


def main():
    global ROOT
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    args = parser.parse_args()
    ROOT = args.root

    violations = []

    def report(relpath, lineno, rule, message):
        violations.append("%s:%d: [%s] %s" % (relpath, lineno, rule, message))

    for relpath in iter_source_files(ROOT):
        with open(os.path.join(ROOT, relpath), encoding="utf-8") as f:
            lines = f.read().splitlines()

        file_allows = set()
        ALLOW_LINE_CACHE.clear()
        INCLUDE_ALLOWED.clear()
        for lineno, raw in enumerate(lines, 1):
            for m in ALLOW_FILE.finditer(raw):
                file_allows.add(m.group(1))
            allowed = tuple(m.group(1) for m in ALLOW_LINE.finditer(raw))
            if allowed:
                ALLOW_LINE_CACHE[(relpath, lineno)] = allowed
                if "include-order" in allowed:
                    m = INCLUDE.match(raw)
                    if m:
                        INCLUDE_ALLOWED.add((lineno, m.group(2)))

        check_determinism(relpath, lines, file_allows, report)
        check_header_guard(relpath, lines, file_allows, report)
        check_include_order(relpath, lines, file_allows, report)

    if violations:
        print("\n".join(violations))
        print("\n%d lint violation(s). Deliberate exceptions take a "
              "'// lint: allow(<rule>)' annotation." % len(violations))
        return 1
    print("lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
