#!/usr/bin/env python3
"""Repo lint: determinism and hygiene rules clang-tidy cannot express.

Hyper-Tune's golden-history tests pin bit-reproducibility: a run is a pure
function of its seed. That property dies the moment library code reads a
wall clock, an OS entropy source, or the C rand() state — so those are
banned at lint time, everywhere except the two files whose *job* is to
touch them:

  wallclock    std::chrono clock reads (steady_clock, system_clock,
               high_resolution_clock) are allowed only in the real-time
               backends — src/runtime/thread_cluster.cc,
               src/runtime/process_cluster.cc, and the worker binary
               src/runtime/worker_main.cc — and src/obs/clock.cc, the
               observability layer's single sanctioned monotonic-clock
               seam (TraceRecorder's default clock; the cluster backends
               override it with their own). The simulator and every
               scheduler/sampler must use simulated time and recorded
               timestamps only.
  unseeded-rng std::random_device, rand(), srand(), time() are allowed
               only in src/common/rng.cc. All randomness flows from the
               run seed through hypertune::Rng.
  raw-stdout   std::cout / printf in library code corrupts machine-read
               report output and interleaves under threads; stdout
               belongs to src/report (and examples/, which the rule does
               not cover). Library diagnostics go through HT_LOG.
  header-guard every header under src/ carries the canonical
               HYPERTUNE_<PATH>_H_ guard (no #pragma once).
  include-order the first include of src/<d>/<f>.cc is its own header
               src/<d>/<f>.h, and every contiguous block of #include
               lines is sorted within its group.

Escape hatch: a line-level annotation `// lint: allow(<rule>)` suppresses
one rule on that line; `// lint: allow-file(<rule>)` anywhere in a file
suppresses the rule for the whole file. Every allowance is deliberate and
reviewable — grep for "lint: allow".

A second mode, `--validate-trace PATH`, checks an exported Chrome trace
(src/obs/chrome_trace.h) instead of the source tree: the JSON must be an
object with a `traceEvents` list, every event needs name/ph/ts/pid/tid
with a known phase, B/E driver spans must nest per track, and every
complete (`X`) job slice needs a non-negative duration plus job_id and
outcome args — the exporter's launch/terminal pairing made visible. CI
runs an observability-enabled example and feeds its trace through here.

A third mode, `--validate-bench PATH`, checks a BENCH_*.json report
(written by bench_micro): a top-level object with schema_version 1 and a
non-empty `benchmarks` list whose entries carry a unique non-empty string
`name`, integer `iterations` > 0, numeric `ns_per_op` >= 0, and — when
present — a numeric `items_per_second` or `events_per_second` >= 0. CI's
bench-smoke job runs `bench_micro --quick` and feeds the output through
here before uploading it as an artifact.

A fourth mode, `--ratchet-bench CURRENT BASELINE`, turns the committed
BENCH_micro.json into a performance ratchet: every benchmark present in
both reports must not be slower in CURRENT than BASELINE by more than the
noise band (`--ratchet-tolerance`, default 2.0x — generous because CI
machines are shared and the quick kernels are nanosecond-scale). Names
only in the baseline are reported but tolerated, so `--quick` subsets
ratchet the kernels they cover; names only in CURRENT are new benchmarks
and pass (they join the ratchet when the baseline is regenerated). An
empty intersection fails: a ratchet that compares nothing guards nothing.
The baseline must also cover the surrogate hot-path kernels
(REQUIRED_RATCHET_KERNELS) — a baseline regenerated without them would
silently stop guarding the batched-prediction speedups.

Usage: python3 tools/lint.py [--root DIR]   (exit 1 on any violation)
       python3 tools/lint.py --validate-trace PATH
       python3 tools/lint.py --validate-bench PATH
       python3 tools/lint.py --ratchet-bench CURRENT BASELINE
"""

import argparse
import json
import os
import re
import sys

SOURCE_DIRS = ("src", "tests", "bench", "examples")
SOURCE_EXTS = (".h", ".cc", ".cpp")

ALLOW_LINE = re.compile(r"//\s*lint:\s*allow\(([a-z\-]+)\)")
ALLOW_FILE = re.compile(r"//\s*lint:\s*allow-file\(([a-z\-]+)\)")
INCLUDE = re.compile(r'^#include\s+([<"])([^">]+)[">]')

# (rule, regex, message). Patterns use lookbehinds so e.g. end_time( or
# fputs( never trip the bans on time( and puts(.
DETERMINISM_RULES = [
    ("wallclock", re.compile(r"steady_clock|system_clock|high_resolution_clock"),
     "wall-clock reads are allowed only in src/runtime/thread_cluster.cc; "
     "use simulated time / recorded timestamps"),
    ("unseeded-rng", re.compile(r"std::random_device"),
     "OS entropy breaks seed-reproducibility; derive from hypertune::Rng"),
    ("unseeded-rng", re.compile(r"(?<![\w:.])s?rand\s*\("),
     "C rand()/srand() is hidden global state; derive from hypertune::Rng"),
    ("unseeded-rng", re.compile(r"(?<![\w:.>])time\s*\("),
     "time() is nondeterministic; runs must be pure functions of the seed"),
    ("raw-stdout", re.compile(r"std::cout"),
     "library code must not write stdout (reports own it); use HT_LOG"),
    ("raw-stdout", re.compile(r"(?<![\w:.])f?printf\s*\("),
     "library code must not printf; use HT_LOG or src/report streams"),
]

# file-relative path prefixes exempt from a rule (the files whose job it is)
RULE_EXEMPT = {
    "wallclock": ("src/runtime/thread_cluster.cc",
                  "src/runtime/process_cluster.cc",
                  "src/runtime/worker_main.cc", "src/obs/clock.cc"),
    "unseeded-rng": ("src/common/rng.cc",),
    "raw-stdout": ("src/report/",),
}
# Determinism rules police the library only; tests/bench/examples may time
# themselves and print freely.
DETERMINISM_SCOPE = "src/"


def iter_source_files(root):
    for top in SOURCE_DIRS:
        top_path = os.path.join(root, top)
        if not os.path.isdir(top_path):
            continue
        for dirpath, _, filenames in os.walk(top_path):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    full = os.path.join(dirpath, name)
                    yield os.path.relpath(full, root).replace(os.sep, "/")


def strip_comments_and_strings(line):
    """Best-effort removal of string literals and // comments so banned
    identifiers inside messages or docs do not trip the rules."""
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    line = re.sub(r"'(\\.|[^'\\])*'", "''", line)
    cut = line.find("//")
    if cut >= 0:
        line = line[:cut]
    return line


def check_determinism(relpath, lines, file_allows, report):
    if not relpath.startswith(DETERMINISM_SCOPE):
        return
    for rule, pattern, message in DETERMINISM_RULES:
        if any(relpath.startswith(p) for p in RULE_EXEMPT.get(rule, ())):
            continue
        if rule in file_allows:
            continue
        for lineno, raw in enumerate(lines, 1):
            if rule in ALLOW_LINE_CACHE.get((relpath, lineno), ()):
                continue
            if pattern.search(strip_comments_and_strings(raw)):
                report(relpath, lineno, rule, message)


def expected_guard(relpath):
    stem = relpath[len("src/"):] if relpath.startswith("src/") else relpath
    token = re.sub(r"[^A-Za-z0-9]", "_", stem.upper())
    return "HYPERTUNE_" + re.sub(r"_H$", "_H_", token)


def check_header_guard(relpath, lines, file_allows, report):
    if not relpath.startswith("src/") or not relpath.endswith(".h"):
        return
    if "header-guard" in file_allows:
        return
    guard = expected_guard(relpath)
    for lineno, raw in enumerate(lines, 1):
        if "#pragma once" in raw:
            report(relpath, lineno, "header-guard",
                   "use the %s include guard, not #pragma once" % guard)
            return
        if raw.startswith("#ifndef"):
            if raw.split()[1:2] != [guard]:
                report(relpath, lineno, "header-guard",
                       "guard must be %s" % guard)
            elif lineno < len(lines) and not lines[lineno].startswith(
                    "#define %s" % guard):
                report(relpath, lineno + 1, "header-guard",
                       "#define %s must follow the #ifndef" % guard)
            return
        if raw.startswith("#"):
            break
    report(relpath, 1, "header-guard", "missing %s include guard" % guard)


def check_include_order(relpath, lines, file_allows, report):
    if "include-order" in file_allows:
        return
    includes = []  # (lineno, kind, path)
    for lineno, raw in enumerate(lines, 1):
        m = INCLUDE.match(raw)
        if m:
            includes.append((lineno, m.group(1), m.group(2)))

    if relpath.endswith((".cc", ".cpp")) and includes:
        own = re.sub(r"\.(cc|cpp)$", ".h", relpath)
        if own != relpath and os.path.exists(os.path.join(ROOT, own)):
            first = includes[0]
            if first[2] != own:
                report(relpath, first[0], "include-order",
                       "first include must be the file's own header %s" % own)
            else:
                includes = includes[1:]  # own header is its own group

    # Contiguous include lines form a block; within a block each kind
    # (system vs project) must be internally sorted.
    block = []
    prev_lineno = None

    def flush():
        for kind in ('<', '"'):
            paths = [(ln, p) for ln, k, p in block if k == kind]
            for (ln_a, a), (ln_b, b) in zip(paths, paths[1:]):
                if (ln_a, a) in INCLUDE_ALLOWED or (ln_b, b) in INCLUDE_ALLOWED:
                    continue
                if a > b:
                    report(relpath, ln_b, "include-order",
                           '"%s" sorts before "%s"' % (b, a))
        block.clear()

    for entry in includes:
        lineno = entry[0]
        if prev_lineno is not None and lineno != prev_lineno + 1:
            flush()
        block.append(entry)
        prev_lineno = lineno
    flush()


TRACE_PHASES = {"B", "E", "X", "i", "M"}


def validate_trace(path):
    """Validate an exported Chrome trace: schema + paired/nested events.

    Returns a list of violation strings (empty means the trace is valid).
    """
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        return ["%s: not readable JSON: %s" % (path, exc)]

    events = doc.get("traceEvents") if isinstance(doc, dict) else None
    if not isinstance(events, list):
        return ["%s: top level must be an object with a traceEvents list"
                % path]
    if not events:
        return ["%s: traceEvents is empty" % path]

    open_spans = {}  # tid -> stack of B-span names
    slices = {}      # tid -> list of (ts, dur) for X events
    for i, ev in enumerate(events):
        where = "%s: traceEvents[%d]" % (path, i)
        if not isinstance(ev, dict):
            errors.append("%s: event must be an object" % where)
            continue
        missing = [k for k in ("name", "ph", "ts", "pid", "tid")
                   if k not in ev]
        if missing:
            errors.append("%s: missing key(s) %s" % (where,
                                                     ", ".join(missing)))
            continue
        ph = ev["ph"]
        if ph not in TRACE_PHASES:
            errors.append("%s: unknown phase %r" % (where, ph))
            continue
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append("%s: ts must be a non-negative number" % where)
            continue
        tid = ev["tid"]
        if ph == "B":
            open_spans.setdefault(tid, []).append(ev["name"])
        elif ph == "E":
            stack = open_spans.get(tid, [])
            if not stack:
                errors.append("%s: E %r on tid %s without open B span"
                              % (where, ev["name"], tid))
            elif stack[-1] != ev["name"]:
                errors.append("%s: E %r does not close innermost span %r"
                              % (where, ev["name"], stack[-1]))
            else:
                stack.pop()
        elif ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append("%s: X slice needs a non-negative dur"
                              % where)
                continue
            args = ev.get("args")
            if not isinstance(args, dict) or "job_id" not in args \
                    or "outcome" not in args:
                errors.append("%s: X job slice needs args.job_id and "
                              "args.outcome (launch/terminal pairing)"
                              % where)
                continue
            slices.setdefault(tid, []).append((ts, dur))
    for tid, stack in sorted(open_spans.items(), key=lambda kv: str(kv[0])):
        for name in stack:
            errors.append("%s: B span %r on tid %s never closed"
                          % (path, name, tid))
    # Per worker track, job attempts are serial: slices must not overlap.
    for tid, spans in sorted(slices.items(), key=lambda kv: str(kv[0])):
        spans.sort()
        for (ts_a, dur_a), (ts_b, _) in zip(spans, spans[1:]):
            if ts_a + dur_a > ts_b + 1e-6:
                errors.append(
                    "%s: overlapping X slices on tid %s (one worker runs "
                    "one attempt at a time): [%s, %s] vs start %s"
                    % (path, tid, ts_a, ts_a + dur_a, ts_b))
    return errors


def validate_bench(path):
    """Validate a BENCH_*.json microbenchmark report.

    Returns a list of violation strings (empty means the report is valid).
    """
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        return ["%s: not readable JSON: %s" % (path, exc)]

    if not isinstance(doc, dict):
        return ["%s: top level must be an object" % path]
    errors = []
    if doc.get("schema_version") != 1:
        errors.append("%s: schema_version must be 1 (got %r)"
                      % (path, doc.get("schema_version")))
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        errors.append("%s: benchmarks must be a non-empty list" % path)
        return errors

    seen_names = set()
    for i, entry in enumerate(benchmarks):
        where = "%s: benchmarks[%d]" % (path, i)
        if not isinstance(entry, dict):
            errors.append("%s: entry must be an object" % where)
            continue
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            errors.append("%s: name must be a non-empty string" % where)
        elif name in seen_names:
            errors.append("%s: duplicate name %r" % (where, name))
        else:
            seen_names.add(name)
        iterations = entry.get("iterations")
        if not isinstance(iterations, int) or isinstance(iterations, bool) \
                or iterations <= 0:
            errors.append("%s: iterations must be a positive integer"
                          % where)
        ns_per_op = entry.get("ns_per_op")
        if not isinstance(ns_per_op, (int, float)) \
                or isinstance(ns_per_op, bool) or ns_per_op < 0:
            errors.append("%s: ns_per_op must be a non-negative number"
                          % where)
        for rate_key in ("items_per_second", "events_per_second"):
            if rate_key not in entry:
                continue
            rate = entry[rate_key]
            if not isinstance(rate, (int, float)) or isinstance(rate, bool) \
                    or rate < 0:
                errors.append("%s: %s must be a non-negative number"
                              % (where, rate_key))
    return errors


# Kernels the committed baseline must cover for the ratchet to mean
# anything: the surrogate hot path (DESIGN.md §13). A baseline missing one
# of these (or a parameterized variant, "NAME/64") silently un-guards the
# batched-prediction speedup claims, so their absence is an error rather
# than a skip. Checked against the BASELINE only — CI's --quick run
# intentionally executes a subset, so CURRENT may omit them.
REQUIRED_RATCHET_KERNELS = (
    "BM_GpPredictBatch",
    "BM_CholUpdateAppend",
    "BM_AcqSweep",
)


def ratchet_bench(current_path, baseline_path, tolerance):
    """Compare two BENCH_*.json reports name-by-name as a perf ratchet.

    Returns a list of violation strings (empty means no regression).
    """
    errors = validate_bench(current_path) + validate_bench(baseline_path)
    if errors:
        return errors

    def entries(path):
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
        return {e["name"]: e for e in doc["benchmarks"]}

    current = entries(current_path)
    baseline = entries(baseline_path)

    for kernel in REQUIRED_RATCHET_KERNELS:
        if not any(name == kernel or name.startswith(kernel + "/")
                   for name in baseline):
            errors.append(
                "%s: required kernel %s missing from the ratchet baseline "
                "(regenerate BENCH_micro.json with a full bench_micro run)"
                % (baseline_path, kernel))
    if errors:
        return errors

    compared = 0
    for name in sorted(baseline):
        if name not in current:
            print("ratchet: %s only in baseline (not run here); skipped"
                  % name)
            continue
        base_ns = baseline[name]["ns_per_op"]
        cur_ns = current[name]["ns_per_op"]
        if base_ns <= 0:
            continue
        compared += 1
        ratio = cur_ns / base_ns
        if ratio > tolerance:
            errors.append(
                "%s: %s regressed %.2fx over baseline (%.1f ns/op vs "
                "%.1f ns/op; tolerance %.2fx)"
                % (current_path, name, ratio, cur_ns, base_ns, tolerance))
        else:
            print("ratchet: %s %.2fx of baseline" % (name, ratio))
    for name in sorted(set(current) - set(baseline)):
        print("ratchet: %s is new (no baseline); passes" % name)
    if compared == 0:
        errors.append("%s vs %s: no benchmark names in common — the "
                      "ratchet compared nothing" % (current_path,
                                                    baseline_path))
    return errors


ALLOW_LINE_CACHE = {}
INCLUDE_ALLOWED = set()
ROOT = "."


def main():
    global ROOT
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--validate-trace", metavar="PATH",
                        help="validate an exported Chrome trace JSON "
                             "instead of linting the source tree")
    parser.add_argument("--validate-bench", metavar="PATH",
                        help="validate a BENCH_*.json microbenchmark "
                             "report instead of linting the source tree")
    parser.add_argument("--ratchet-bench", nargs=2,
                        metavar=("CURRENT", "BASELINE"),
                        help="fail when a benchmark in CURRENT regressed "
                             "past the noise band over BASELINE")
    parser.add_argument("--ratchet-tolerance", type=float, default=2.0,
                        help="allowed ns_per_op ratio CURRENT/BASELINE "
                             "before --ratchet-bench fails (default 2.0)")
    args = parser.parse_args()
    ROOT = args.root

    if args.validate_trace:
        trace_errors = validate_trace(args.validate_trace)
        if trace_errors:
            print("\n".join(trace_errors))
            print("\n%d trace violation(s)." % len(trace_errors))
            return 1
        print("trace: OK (%s)" % args.validate_trace)
        return 0

    if args.validate_bench:
        bench_errors = validate_bench(args.validate_bench)
        if bench_errors:
            print("\n".join(bench_errors))
            print("\n%d bench-report violation(s)." % len(bench_errors))
            return 1
        print("bench report: OK (%s)" % args.validate_bench)
        return 0

    if args.ratchet_bench:
        ratchet_errors = ratchet_bench(args.ratchet_bench[0],
                                       args.ratchet_bench[1],
                                       args.ratchet_tolerance)
        if ratchet_errors:
            print("\n".join(ratchet_errors))
            print("\n%d bench-ratchet violation(s)." % len(ratchet_errors))
            return 1
        print("bench ratchet: OK (%s vs %s)" % (args.ratchet_bench[0],
                                                args.ratchet_bench[1]))
        return 0

    violations = []

    def report(relpath, lineno, rule, message):
        violations.append("%s:%d: [%s] %s" % (relpath, lineno, rule, message))

    for relpath in iter_source_files(ROOT):
        with open(os.path.join(ROOT, relpath), encoding="utf-8") as f:
            lines = f.read().splitlines()

        file_allows = set()
        ALLOW_LINE_CACHE.clear()
        INCLUDE_ALLOWED.clear()
        for lineno, raw in enumerate(lines, 1):
            for m in ALLOW_FILE.finditer(raw):
                file_allows.add(m.group(1))
            allowed = tuple(m.group(1) for m in ALLOW_LINE.finditer(raw))
            if allowed:
                ALLOW_LINE_CACHE[(relpath, lineno)] = allowed
                if "include-order" in allowed:
                    m = INCLUDE.match(raw)
                    if m:
                        INCLUDE_ALLOWED.add((lineno, m.group(2)))

        check_determinism(relpath, lines, file_allows, report)
        check_header_guard(relpath, lines, file_allows, report)
        check_include_order(relpath, lines, file_allows, report)

    if violations:
        print("\n".join(violations))
        print("\n%d lint violation(s). Deliberate exceptions take a "
              "'// lint: allow(<rule>)' annotation." % len(violations))
        return 1
    print("lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
