#!/usr/bin/env python3
"""AST-grade project analyzer for hypertune.

Enforces project invariants that plain compiler warnings cannot express:

  raw-sync         No raw std::mutex / std::lock_guard / std::unique_lock /
                   std::condition_variable / std::scoped_lock /
                   std::shared_mutex outside src/common/thread_annotations.h.
                   Everything else must go through the annotated Mutex /
                   MutexLock / CondVar wrappers so Clang thread-safety
                   analysis and the lockdep runtime checker see every lock.

  guarded-member   In any class that owns a Mutex, every mutable data member
                   must carry a GUARDED_BY annotation. Members that are
                   const, atomic, themselves synchronization objects, or
                   self-locking aggregates are exempt; intentionally
                   unguarded members (e.g. written once before threads
                   start) are suppressed via the committed baseline.

  discarded-status No expression-statement call to a Status/Result-returning
                   function. This backstops [[nodiscard]] +
                   -Werror=unused-result for compilers or contexts that
                   drop the attribute; the only sanctioned discard is an
                   explicit .IgnoreError().

  encode-decode    Every WireEncoder::Encode<X> has a matching
                   WireDecoder::Decode<X> and vice versa, so the wire format
                   cannot grow write-only (or read-only) record types.

  unranked-mutex   Every Mutex variable or member must be constructed with a
                   LockRank from the registry in src/common/lock_order.h
                   (Mutex(LockRank, name)). An unranked Mutex is invisible to
                   the lockdep ordering checker, so deadlock cycles through
                   it go undetected.

  predict-batch    Every class that overrides Surrogate::Predict must also
                   override PredictBatch, so new surrogates cannot silently
                   fall back to the per-row base-class loop inside the
                   batched acquisition sweep.

Two engines produce identical finding IDs:

  libclang  Drives clang.cindex over compile_commands.json. Used in CI
            (--engine libclang), where python3-clang is installed.
  text      Dependency-free structural scanner. Used locally where libclang
            is unavailable (--engine auto falls back to it with a notice).

Findings are compared against a committed baseline (tools/analyze_baseline.txt)
that may only shrink: a finding missing from the baseline fails the run, and
a baseline entry that no longer fires fails the run as stale. Use
--update-baseline after deliberately fixing or suppressing findings.

Finding IDs are line-number-free (check:path:symbol) so routine edits do not
churn the baseline.
"""

import argparse
import os
import re
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SOURCE_DIRS = ("src", "tests", "bench")

RAW_SYNC_TOKENS = (
    "std::mutex",
    "std::recursive_mutex",
    "std::shared_mutex",
    "std::timed_mutex",
    "std::lock_guard",
    "std::unique_lock",
    "std::scoped_lock",
    "std::shared_lock",
    "std::condition_variable",
)

# The one file allowed to touch raw std synchronization: it *implements*
# the annotated wrappers.
RAW_SYNC_EXEMPT = ("src/common/thread_annotations.h",)

# Member types that synchronize themselves (or are synchronization).
SELF_SYNC_TYPE_RE = re.compile(
    r"\b(Mutex|CondVar|std::atomic|std::thread)\b|\batomic<")

WIRE_FORMAT_HEADER = "src/runtime/wire_format.h"


class Finding:
    def __init__(self, check, path, symbol, detail):
        self.check = check
        self.path = path
        self.symbol = symbol
        self.detail = detail

    @property
    def id(self):
        return "%s:%s:%s" % (self.check, self.path, self.symbol)

    def __repr__(self):
        return "%s  (%s)" % (self.id, self.detail)


def strip_comments(text):
    """Removes // and /* */ comments, preserving newlines for line math."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, end))
            i = end
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            out.append(text[i : j + 1])
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def strip_preprocessor(text):
    """Drops preprocessor directive lines (#include, #define, guards)."""
    return "\n".join("" if line.lstrip().startswith("#") else line
                     for line in text.split("\n"))


def strip_balanced(text, open_ch, close_ch):
    """Removes balanced open..close regions (template args, brace inits)."""
    out = []
    depth = 0
    for c in text:
        if c == open_ch:
            depth += 1
        elif c == close_ch and depth > 0:
            depth -= 1
        elif depth == 0:
            out.append(c)
    return "".join(out)


def iter_source_files(root):
    for d in SOURCE_DIRS:
        base = os.path.join(root, d)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith((".h", ".cc")):
                    full = os.path.join(dirpath, name)
                    yield os.path.relpath(full, root).replace(os.sep, "/")


# ---------------------------------------------------------------------------
# Check: raw-sync (text)
# ---------------------------------------------------------------------------


def check_raw_sync_text(root, files, findings):
    for rel in files:
        if rel in RAW_SYNC_EXEMPT:
            continue
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            text = strip_comments(f.read())
        for token in RAW_SYNC_TOKENS:
            if re.search(re.escape(token) + r"\b", text):
                findings.append(
                    Finding("raw-sync", rel, token,
                            "raw %s; use the annotated wrappers from "
                            "src/common/thread_annotations.h" % token))


# ---------------------------------------------------------------------------
# Check: unranked-mutex (text)
# ---------------------------------------------------------------------------

# A Mutex declaration with its (optional) initializer: `Mutex name;`,
# `Mutex name{...};`, or `Mutex name(...);`. Pointer/reference declarations
# (`Mutex* m`, `Mutex& m`) do not match — only owning declarations must
# carry a rank.
_MUTEX_DECL_RE = re.compile(
    r"\bMutex\s+(\w+)\s*(\{[^{}]*\}|\([^()]*\))?\s*;")


def check_unranked_mutex_text(root, files, findings):
    for rel in files:
        if rel in RAW_SYNC_EXEMPT:
            continue
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            text = strip_preprocessor(strip_comments(f.read()))
        for m in _MUTEX_DECL_RE.finditer(text):
            if "LockRank" in (m.group(2) or ""):
                continue
            findings.append(
                Finding("unranked-mutex", rel, m.group(1),
                        "Mutex %s constructed without a LockRank from "
                        "src/common/lock_order.h; lockdep cannot order it"
                        % m.group(1)))


# ---------------------------------------------------------------------------
# Check: guarded-member (text)
# ---------------------------------------------------------------------------


class _ClassBody:
    def __init__(self, name):
        self.name = name
        self.statements = []  # direct member-level statements
        self.nested = []  # nested _ClassBody


_CLASS_HEAD_RE = re.compile(
    r"(?:^|[;{}]|\bpublic:|\bprivate:|\bprotected:)\s*"
    r"(?:template\s*<[^<>]*>\s*)?(class|struct)\s+(\w+)"
    r"\s*(?:final\s*)?(?::[^{;]*)?$")


def _parse_classes(text):
    """Splits top-level class/struct bodies out of comment-stripped text.

    Tracks brace depth; statements directly inside a class body are split on
    ';' at body depth, and inline function bodies / nested classes are
    handled by depth bookkeeping. This is deliberately style-bound to this
    repository (one declaration per statement) — the libclang engine is the
    authoritative implementation.
    """
    classes = []
    stack = []  # (class_body, body_depth)
    buf = []
    depth = 0
    for c in text:
        if c == "{":
            head = "".join(buf).strip()
            m = _CLASS_HEAD_RE.search(head)
            if m:
                body = _ClassBody(m.group(2))
                if stack:
                    stack[-1][0].nested.append(body)
                else:
                    classes.append(body)
                stack.append((body, depth + 1))
                buf = []
            depth += 1
            if not m:
                buf.append(c)
        elif c == "}":
            depth -= 1
            if stack and depth < stack[-1][1]:
                stack.pop()
                buf = []
            else:
                buf.append(c)
        elif c == ";":
            if stack and depth == stack[-1][1]:
                stmt = "".join(buf).strip()
                if stmt:
                    stack[-1][0].statements.append(stmt)
                buf = []
            else:
                buf.append(c)
        else:
            buf.append(c)
    return classes


_FIELD_RE = re.compile(r"^(.*?)\b(\w+)\s*(?:=[^;]*)?$")

_NON_FIELD_KEYWORDS = re.compile(
    r"^\s*(using|typedef|friend|static_assert|enum|public|private|protected|"
    r"template)\b")


def _field_of(statement):
    """Returns (type_text, name) if the statement declares a data member."""
    stmt = statement
    # Access specifiers glued to the front by the tokenizer.
    stmt = re.sub(r"^(public|private|protected):\s*", "", stmt).strip()
    if not stmt or _NON_FIELD_KEYWORDS.match(stmt):
        return None
    if re.match(r"^(class|struct)\s", stmt):
        return None  # forward declaration
    flat = strip_balanced(stmt, "<", ">")  # drop template args (incl. fn types)
    flat = strip_balanced(flat, "{", "}")  # drop brace initializers
    flat = re.sub(r"\[[^\]]*\]", "", flat)  # drop array extents
    if "(" in flat:
        return None  # function declaration (or macro-annotated one)
    flat = re.sub(r"\s*=.*$", "", flat).strip()  # drop `= default-init`
    m = _FIELD_RE.match(flat)
    if not m:
        return None
    type_text, name = m.group(1).strip(), m.group(2)
    if not type_text:
        return None
    return statement, name, type_text


def _walk_guarded(rel, body, findings):
    stmts = [s for s in (_field_of(s) for s in body.statements) if s]
    has_mutex = any(re.search(r"\bMutex\b", t) and "GUARDED_BY" not in s
                    for s, _, t in stmts)
    if has_mutex:
        for stmt, name, type_text in stmts:
            if SELF_SYNC_TYPE_RE.search(type_text):
                continue
            if re.search(r"\bconst\b", type_text) or "constexpr" in type_text:
                continue
            if "GUARDED_BY" in stmt:
                continue
            findings.append(
                Finding("guarded-member", rel,
                        "%s::%s" % (body.name, name),
                        "mutable member of a Mutex-holding class lacks "
                        "GUARDED_BY"))
    for nested in body.nested:
        _walk_guarded(rel, nested, findings)


def check_guarded_member_text(root, files, findings):
    for rel in files:
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            text = strip_preprocessor(strip_comments(f.read()))
        if "Mutex" not in text:
            continue
        for body in _parse_classes(text):
            _walk_guarded(rel, body, findings)


# ---------------------------------------------------------------------------
# Check: discarded-status (text)
# ---------------------------------------------------------------------------

_STATUS_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:static\s+|virtual\s+)*"
    r"(?:Status|Result<[^;=]*?>)\s+(\w+)\s*\(", re.MULTILINE)

_VOID_DECL_RE = re.compile(
    r"^\s*(?:static\s+|virtual\s+)*void\s+(\w+)\s*\(", re.MULTILINE)


def _collect_status_names(root, files):
    status_names = set()
    void_names = set()
    for rel in files:
        if not rel.endswith(".h"):
            continue
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            text = strip_comments(f.read())
        status_names.update(_STATUS_DECL_RE.findall(text))
        void_names.update(_VOID_DECL_RE.findall(text))
    # A name declared both ways is ambiguous without type info; leave it to
    # the compiler (-Werror=unused-result) and the libclang engine.
    return status_names - void_names


def _statements(text):
    """Yields top-of-statement text split on ';' outside braces-in-parens."""
    buf = []
    paren = 0
    for c in text:
        if c == "(":
            paren += 1
        elif c == ")":
            paren = max(0, paren - 1)
        if c in ";{}" and paren == 0:
            yield "".join(buf).strip()
            buf = []
        else:
            buf.append(c)
    tail = "".join(buf).strip()
    if tail:
        yield tail


# The *top-level* call of an expression statement: an optional paren-free
# receiver chain, then the callee. A leading macro like
# HT_RETURN_IF_ERROR(...) captures as the callee itself, so calls consumed
# by such macros never match a Status-returning name.
_CALL_STMT_RE = re.compile(
    r"^(?:[\w\[\]]+(?:\.|->|::))*(\w+)\s*\(")

_CONTROL_KEYWORDS = re.compile(
    r"\b(return|if|while|for|switch|co_return|case|throw)\b|=")


def check_discarded_status_text(root, files, findings):
    names = _collect_status_names(root, files)
    for rel in files:
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            text = strip_preprocessor(strip_comments(f.read()))
        for stmt in _statements(text):
            m = _CALL_STMT_RE.match(stmt)
            if not m or m.group(1) not in names:
                continue
            if _CONTROL_KEYWORDS.search(stmt):
                continue
            if "IgnoreError" in stmt or stmt.rstrip().endswith((".", "->")):
                continue
            # Must be a full call statement, not a prefix of a member chain.
            if not stmt.rstrip().endswith(")"):
                continue
            findings.append(
                Finding("discarded-status", rel, m.group(1),
                        "Status/Result of %s() discarded; handle it or call "
                        ".IgnoreError()" % m.group(1)))


# ---------------------------------------------------------------------------
# Check: encode-decode parity (structural; shared by both engines)
# ---------------------------------------------------------------------------


def check_encode_decode(root, findings, header=None):
    rel = header or WIRE_FORMAT_HEADER
    path = os.path.join(root, rel)
    if not os.path.exists(path):
        return
    with open(path, encoding="utf-8") as f:
        text = strip_comments(f.read())
    encoders = set(re.findall(r"\bEncode(\w+)\s*\(", text))
    decoders = set(re.findall(r"\bDecode(\w+)\s*\(", text))
    for name in sorted(encoders - decoders):
        findings.append(
            Finding("encode-decode", rel, "Encode%s" % name,
                    "Encode%s has no matching Decode%s — write-only wire "
                    "records cannot be replayed" % (name, name)))
    for name in sorted(decoders - encoders):
        findings.append(
            Finding("encode-decode", rel, "Decode%s" % name,
                    "Decode%s has no matching Encode%s — dead decode path "
                    "or missing writer" % (name, name)))


# ---------------------------------------------------------------------------
# Check: predict-batch parity (structural; shared by both engines)
# ---------------------------------------------------------------------------

_PREDICT_OVERRIDE_RE = re.compile(
    r"\bPrediction\s+Predict\s*\([^)]*\)[^;{}]*\boverride\b")
_PREDICT_BATCH_OVERRIDE_RE = re.compile(
    r"\bPredictBatch\s*\([^)]*\)[^;{}]*\boverride\b")


def _walk_predict_batch(rel, body, findings):
    text = ";".join(body.statements)
    if _PREDICT_OVERRIDE_RE.search(text) and \
            not _PREDICT_BATCH_OVERRIDE_RE.search(text):
        findings.append(
            Finding("predict-batch", rel, "%s::Predict" % body.name,
                    "%s overrides Predict but not PredictBatch — batched "
                    "acquisition would fall back to the per-row loop"
                    % body.name))
    for nested in body.nested:
        _walk_predict_batch(rel, nested, findings)


def check_predict_batch(root, findings):
    for rel in iter_source_files(root):
        if not rel.endswith(".h"):
            continue
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            text = strip_preprocessor(strip_comments(f.read()))
        if "Predict" not in text:
            continue
        for body in _parse_classes(text):
            _walk_predict_batch(rel, body, findings)


# ---------------------------------------------------------------------------
# libclang engine
# ---------------------------------------------------------------------------


def load_libclang():
    try:
        from clang import cindex  # noqa: PLC0415
    except ImportError:
        return None
    try:
        cindex.Index.create()
    except Exception:  # library present but unloadable
        for lib in ("libclang-14.so.1", "libclang.so.1", "libclang.so"):
            try:
                cindex.Config.set_library_file(lib)
                cindex.Index.create()
                break
            except Exception:
                cindex.Config.loaded = False
        else:
            return None
    return cindex


def _clang_rel(root, cursor):
    if cursor.location.file is None:
        return None
    path = os.path.abspath(cursor.location.file.name)
    if not path.startswith(root + os.sep):
        return None
    rel = os.path.relpath(path, root).replace(os.sep, "/")
    if not rel.startswith(SOURCE_DIRS):
        return None
    return rel


def _tokens_text(cursor):
    return " ".join(t.spelling for t in cursor.get_tokens())


def run_libclang_engine(root, compile_commands_dir, findings):
    cindex = load_libclang()
    if cindex is None:
        raise RuntimeError(
            "libclang engine requested but python clang bindings are "
            "unavailable (install python3-clang + libclang)")
    db = cindex.CompilationDatabase.fromDirectory(compile_commands_dir)
    index = cindex.Index.create()
    CursorKind = cindex.CursorKind

    seen_tus = set()
    raw_sync_hits = set()
    guarded_hits = set()
    discard_hits = set()
    unranked_hits = set()

    def class_has_mutex(cursor):
        for child in cursor.get_children():
            if child.kind == CursorKind.FIELD_DECL and \
                    "Mutex" in child.type.spelling and \
                    "GUARDED_BY" not in _tokens_text(child):
                return True
        return False

    def visit(cursor, parent_kind):
        rel = _clang_rel(root, cursor)
        if cursor.kind in (CursorKind.VAR_DECL, CursorKind.FIELD_DECL) and rel:
            spelling = cursor.type.spelling
            for token in RAW_SYNC_TOKENS:
                if token in spelling and rel not in RAW_SYNC_EXEMPT:
                    raw_sync_hits.add((rel, token))
            if re.search(r"\bMutex\b", spelling) and \
                    "*" not in spelling and "&" not in spelling and \
                    rel not in RAW_SYNC_EXEMPT and \
                    "LockRank" not in _tokens_text(cursor):
                unranked_hits.add((rel, cursor.spelling))
        if cursor.kind in (CursorKind.CLASS_DECL, CursorKind.STRUCT_DECL) and \
                rel and cursor.is_definition() and class_has_mutex(cursor):
            for field in cursor.get_children():
                if field.kind != CursorKind.FIELD_DECL:
                    continue
                type_text = field.type.spelling
                if SELF_SYNC_TYPE_RE.search(type_text):
                    continue
                if field.type.is_const_qualified() or "const " in type_text:
                    continue
                if "GUARDED_BY" in _tokens_text(field) or \
                        any(a.kind == CursorKind.UNEXPOSED_ATTR
                            for a in field.get_children()):
                    continue
                guarded_hits.add(
                    (rel, "%s::%s" % (cursor.spelling, field.spelling)))
        if cursor.kind == CursorKind.COMPOUND_STMT:
            for stmt in cursor.get_children():
                call = stmt
                while call.kind == CursorKind.UNEXPOSED_EXPR:
                    children = list(call.get_children())
                    if len(children) != 1:
                        break
                    call = children[0]
                if call.kind != CursorKind.CALL_EXPR:
                    continue
                result = call.type.spelling
                if not re.search(r"\b(Status|Result<)", result):
                    continue
                crel = _clang_rel(root, call)
                if crel is None or "IgnoreError" in _tokens_text(call):
                    continue
                discard_hits.add((crel, call.spelling or "<call>"))
        for child in cursor.get_children():
            visit(child, cursor.kind)

    for rel in iter_source_files(root):
        if not rel.endswith(".cc"):
            continue
        path = os.path.join(root, rel)
        commands = db.getCompileCommands(path)
        if not commands:
            continue
        args = [a for a in list(commands[0].arguments)[1:]
                if a not in ("-c", path) and not a.startswith("-o")]
        tu = index.parse(path, args=args)
        fatal = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal:
            raise RuntimeError("libclang failed on %s: %s" %
                               (rel, fatal[0].spelling))
        if tu.spelling in seen_tus:
            continue
        seen_tus.add(tu.spelling)
        visit(tu.cursor, None)

    for rel, token in sorted(raw_sync_hits):
        findings.append(Finding("raw-sync", rel, token,
                                "raw %s; use annotated wrappers" % token))
    for rel, symbol in sorted(guarded_hits):
        findings.append(Finding("guarded-member", rel, symbol,
                                "mutable member of a Mutex-holding class "
                                "lacks GUARDED_BY"))
    for rel, name in sorted(discard_hits):
        findings.append(Finding("discarded-status", rel, name,
                                "Status/Result of %s() discarded" % name))
    for rel, name in sorted(unranked_hits):
        findings.append(Finding("unranked-mutex", rel, name,
                                "Mutex %s constructed without a LockRank; "
                                "lockdep cannot order it" % name))


# ---------------------------------------------------------------------------
# Engine driver + baseline
# ---------------------------------------------------------------------------


def run_text_engine(root, findings):
    files = list(iter_source_files(root))
    check_raw_sync_text(root, files, findings)
    check_unranked_mutex_text(root, files, findings)
    check_guarded_member_text(root, files, findings)
    check_discarded_status_text(root, files, findings)


def load_baseline(path):
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                entries.append(line)
    return entries


def write_baseline(path, ids):
    with open(path, "w", encoding="utf-8") as f:
        f.write("# Suppressed tools/analyze.py findings. CI only lets this\n"
                "# file shrink: new findings must be fixed (or deliberately\n"
                "# added here in the same review), and entries that stop\n"
                "# firing must be deleted. Format: check:path:symbol\n")
        for fid in sorted(ids):
            f.write(fid + "\n")


def dedupe(findings):
    seen = set()
    out = []
    for f in findings:
        if f.id not in seen:
            seen.add(f.id)
            out.append(f)
    return out


def apply_baseline(findings, baseline):
    suppressed = set(baseline)
    new = [f for f in findings if f.id not in suppressed]
    fired = {f.id for f in findings}
    stale = sorted(s for s in suppressed if s not in fired)
    return new, stale


# ---------------------------------------------------------------------------
# Self-test fixtures: one deliberate violation per check.
# ---------------------------------------------------------------------------

_FIXTURES = {
    "src/bad_raw_sync.h": """
#pragma once
#include <mutex>
struct BadRawSync {
  std::mutex raw_mu;
};
""",
    "src/bad_guarded.h": """
#pragma once
struct Mutex {};
#define GUARDED_BY(x)
class BadGuarded {
 public:
  int Get();
 private:
  Mutex mu_{LockRank::kLogSink, "log.sink"};
  int guarded_ GUARDED_BY(mu_) = 0;
  int unguarded_counter = 0;
};
""",
    "src/bad_unranked.h": """
#pragma once
struct NoRank {
  Mutex no_rank_mu_;
  Mutex ranked_mu_{LockRank::kLogSink, "log.sink"};
};
""",
    "src/bad_discard.h": """
#pragma once
struct Status { void IgnoreError() const {} };
Status MightFail(int x);
""",
    "src/bad_discard.cc": """
#include "src/bad_discard.h"
void Caller() {
  MightFail(1);
  MightFail(2).IgnoreError();
  Status kept = MightFail(3);
  (void)kept;
}
""",
    "src/runtime/wire_format.h": """
#pragma once
struct WireEncoder {
  void EncodeJob(int j);
  void EncodeOrphan(int o);
};
struct WireDecoder {
  int DecodeJob();
  int DecodeWidow();
};
""",
    "src/bad_predict.h": """
#pragma once
#include <vector>
struct Prediction {
  double mean = 0.0;
  double variance = 0.0;
};
class Matrix {};
class Surrogate {
 public:
  virtual Prediction Predict(const std::vector<double>& x) const = 0;
  virtual std::vector<Prediction> PredictBatch(const Matrix& x) const;
};
class BadBatch : public Surrogate {
 public:
  Prediction Predict(const std::vector<double>& x) const override;
};
class GoodBatch : public Surrogate {
 public:
  Prediction Predict(const std::vector<double>& x) const override;
  std::vector<Prediction> PredictBatch(const Matrix& x) const override;
};
""",
}

_EXPECTED_SELF_TEST = {
    "raw-sync:src/bad_raw_sync.h:std::mutex",
    "guarded-member:src/bad_guarded.h:BadGuarded::unguarded_counter",
    "discarded-status:src/bad_discard.cc:MightFail",
    "encode-decode:src/runtime/wire_format.h:EncodeOrphan",
    "encode-decode:src/runtime/wire_format.h:DecodeWidow",
    "unranked-mutex:src/bad_unranked.h:no_rank_mu_",
    "predict-batch:src/bad_predict.h:BadBatch::Predict",
}

_FORBIDDEN_SELF_TEST_SYMBOLS = (
    # Correctly handled cases must NOT fire.
    "BadGuarded::guarded_",
    "BadGuarded::mu_",
    "EncodeJob",
    "DecodeJob",
    "ranked_mu_",
    "GoodBatch",
)


def run_self_test():
    with tempfile.TemporaryDirectory(prefix="analyze_selftest_") as tmp:
        for rel, content in _FIXTURES.items():
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
        for d in SOURCE_DIRS:
            os.makedirs(os.path.join(tmp, d), exist_ok=True)
        findings = []
        run_text_engine(tmp, findings)
        check_encode_decode(tmp, findings)
        check_predict_batch(tmp, findings)
        got = {f.id for f in findings}
        missing = _EXPECTED_SELF_TEST - got
        unexpected = {fid for fid in got
                      if any(sym in fid
                             for sym in _FORBIDDEN_SELF_TEST_SYMBOLS)}
        ok = True
        if missing:
            print("self-test FAILED: expected findings not produced:")
            for fid in sorted(missing):
                print("  " + fid)
            ok = False
        if unexpected:
            print("self-test FAILED: false positives on clean fixtures:")
            for fid in sorted(unexpected):
                print("  " + fid)
            ok = False
        if ok:
            print("self-test passed: %d fixture findings, %d expected" %
                  (len(got), len(_EXPECTED_SELF_TEST)))
        return 0 if ok else 1


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root (default: repo of this script)")
    parser.add_argument("--engine", choices=("auto", "libclang", "text"),
                        default="auto",
                        help="auto prefers libclang, falls back to text")
    parser.add_argument("--compile-commands", default=None,
                        help="directory containing compile_commands.json "
                             "(default: <root>/build)")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: tools/analyze_baseline"
                             ".txt under --root)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in fixtures and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return run_self_test()

    root = os.path.abspath(args.root)
    baseline_path = args.baseline or os.path.join(root, "tools",
                                                  "analyze_baseline.txt")
    cc_dir = args.compile_commands or os.path.join(root, "build")

    engine = args.engine
    if engine == "auto":
        if load_libclang() is not None and \
                os.path.exists(os.path.join(cc_dir, "compile_commands.json")):
            engine = "libclang"
        else:
            print("note: libclang unavailable; using the text engine "
                  "(CI runs --engine libclang)")
            engine = "text"

    findings = []
    if engine == "libclang":
        run_libclang_engine(root, cc_dir, findings)
    else:
        run_text_engine(root, findings)
    check_encode_decode(root, findings)
    check_predict_batch(root, findings)
    findings = dedupe(findings)

    if args.update_baseline:
        write_baseline(baseline_path, {f.id for f in findings})
        print("baseline updated: %d entries -> %s" %
              (len(findings), os.path.relpath(baseline_path, root)))
        return 0

    baseline = load_baseline(baseline_path)
    new, stale = apply_baseline(findings, baseline)

    rc = 0
    if new:
        print("analyze.py [%s engine]: %d new finding(s):" %
              (engine, len(new)))
        for f in new:
            print("  %r" % f)
        rc = 1
    if stale:
        print("analyze.py: %d stale baseline entr%s (no longer firing — "
              "delete from %s):" %
              (len(stale), "y" if len(stale) == 1 else "ies",
               os.path.relpath(baseline_path, root)))
        for fid in stale:
            print("  " + fid)
        rc = 1
    if rc == 0:
        print("analyze.py [%s engine]: clean (%d suppressed by baseline)" %
              (engine, len(baseline)))
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
