# Empty dependencies file for acquisition_test.
# This may be replaced when dependencies are built.
