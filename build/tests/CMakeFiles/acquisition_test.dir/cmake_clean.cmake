file(REMOVE_RECURSE
  "CMakeFiles/acquisition_test.dir/acquisition_test.cc.o"
  "CMakeFiles/acquisition_test.dir/acquisition_test.cc.o.d"
  "acquisition_test"
  "acquisition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acquisition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
