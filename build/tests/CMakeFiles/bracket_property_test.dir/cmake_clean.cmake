file(REMOVE_RECURSE
  "CMakeFiles/bracket_property_test.dir/bracket_property_test.cc.o"
  "CMakeFiles/bracket_property_test.dir/bracket_property_test.cc.o.d"
  "bracket_property_test"
  "bracket_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bracket_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
