# Empty compiler generated dependencies file for bracket_property_test.
# This may be replaced when dependencies are built.
