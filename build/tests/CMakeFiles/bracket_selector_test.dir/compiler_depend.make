# Empty compiler generated dependencies file for bracket_selector_test.
# This may be replaced when dependencies are built.
