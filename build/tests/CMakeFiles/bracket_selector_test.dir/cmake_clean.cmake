file(REMOVE_RECURSE
  "CMakeFiles/bracket_selector_test.dir/bracket_selector_test.cc.o"
  "CMakeFiles/bracket_selector_test.dir/bracket_selector_test.cc.o.d"
  "bracket_selector_test"
  "bracket_selector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bracket_selector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
