# Empty compiler generated dependencies file for simulated_cluster_test.
# This may be replaced when dependencies are built.
