file(REMOVE_RECURSE
  "CMakeFiles/simulated_cluster_test.dir/simulated_cluster_test.cc.o"
  "CMakeFiles/simulated_cluster_test.dir/simulated_cluster_test.cc.o.d"
  "simulated_cluster_test"
  "simulated_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulated_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
