file(REMOVE_RECURSE
  "CMakeFiles/kde_sampler_test.dir/kde_sampler_test.cc.o"
  "CMakeFiles/kde_sampler_test.dir/kde_sampler_test.cc.o.d"
  "kde_sampler_test"
  "kde_sampler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kde_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
