# Empty dependencies file for kde_sampler_test.
# This may be replaced when dependencies are built.
