file(REMOVE_RECURSE
  "CMakeFiles/bracket_test.dir/bracket_test.cc.o"
  "CMakeFiles/bracket_test.dir/bracket_test.cc.o.d"
  "bracket_test"
  "bracket_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bracket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
