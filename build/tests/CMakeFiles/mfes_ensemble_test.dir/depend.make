# Empty dependencies file for mfes_ensemble_test.
# This may be replaced when dependencies are built.
