file(REMOVE_RECURSE
  "CMakeFiles/mfes_ensemble_test.dir/mfes_ensemble_test.cc.o"
  "CMakeFiles/mfes_ensemble_test.dir/mfes_ensemble_test.cc.o.d"
  "mfes_ensemble_test"
  "mfes_ensemble_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfes_ensemble_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
