# Empty dependencies file for method_properties_test.
# This may be replaced when dependencies are built.
