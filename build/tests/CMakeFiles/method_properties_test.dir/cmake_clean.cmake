file(REMOVE_RECURSE
  "CMakeFiles/method_properties_test.dir/method_properties_test.cc.o"
  "CMakeFiles/method_properties_test.dir/method_properties_test.cc.o.d"
  "method_properties_test"
  "method_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/method_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
