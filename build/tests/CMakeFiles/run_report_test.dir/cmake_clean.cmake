file(REMOVE_RECURSE
  "CMakeFiles/run_report_test.dir/run_report_test.cc.o"
  "CMakeFiles/run_report_test.dir/run_report_test.cc.o.d"
  "run_report_test"
  "run_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
