# Empty dependencies file for run_report_test.
# This may be replaced when dependencies are built.
