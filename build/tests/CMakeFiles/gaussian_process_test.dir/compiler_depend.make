# Empty compiler generated dependencies file for gaussian_process_test.
# This may be replaced when dependencies are built.
