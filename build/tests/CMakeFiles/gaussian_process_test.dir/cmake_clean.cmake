file(REMOVE_RECURSE
  "CMakeFiles/gaussian_process_test.dir/gaussian_process_test.cc.o"
  "CMakeFiles/gaussian_process_test.dir/gaussian_process_test.cc.o.d"
  "gaussian_process_test"
  "gaussian_process_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaussian_process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
