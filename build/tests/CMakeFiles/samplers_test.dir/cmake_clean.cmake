file(REMOVE_RECURSE
  "CMakeFiles/samplers_test.dir/samplers_test.cc.o"
  "CMakeFiles/samplers_test.dir/samplers_test.cc.o.d"
  "samplers_test"
  "samplers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samplers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
