# Empty compiler generated dependencies file for samplers_test.
# This may be replaced when dependencies are built.
