file(REMOVE_RECURSE
  "CMakeFiles/measurement_store_test.dir/measurement_store_test.cc.o"
  "CMakeFiles/measurement_store_test.dir/measurement_store_test.cc.o.d"
  "measurement_store_test"
  "measurement_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measurement_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
