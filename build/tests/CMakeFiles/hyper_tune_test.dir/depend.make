# Empty dependencies file for hyper_tune_test.
# This may be replaced when dependencies are built.
