file(REMOVE_RECURSE
  "CMakeFiles/hyper_tune_test.dir/hyper_tune_test.cc.o"
  "CMakeFiles/hyper_tune_test.dir/hyper_tune_test.cc.o.d"
  "hyper_tune_test"
  "hyper_tune_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyper_tune_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
