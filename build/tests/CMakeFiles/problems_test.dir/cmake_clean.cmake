file(REMOVE_RECURSE
  "CMakeFiles/problems_test.dir/problems_test.cc.o"
  "CMakeFiles/problems_test.dir/problems_test.cc.o.d"
  "problems_test"
  "problems_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/problems_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
