file(REMOVE_RECURSE
  "CMakeFiles/tuner_factory_test.dir/tuner_factory_test.cc.o"
  "CMakeFiles/tuner_factory_test.dir/tuner_factory_test.cc.o.d"
  "tuner_factory_test"
  "tuner_factory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuner_factory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
