# Empty compiler generated dependencies file for tuner_factory_test.
# This may be replaced when dependencies are built.
