# Empty compiler generated dependencies file for thread_cluster_test.
# This may be replaced when dependencies are built.
