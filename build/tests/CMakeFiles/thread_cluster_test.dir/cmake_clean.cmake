file(REMOVE_RECURSE
  "CMakeFiles/thread_cluster_test.dir/thread_cluster_test.cc.o"
  "CMakeFiles/thread_cluster_test.dir/thread_cluster_test.cc.o.d"
  "thread_cluster_test"
  "thread_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
