file(REMOVE_RECURSE
  "CMakeFiles/parameter_test.dir/parameter_test.cc.o"
  "CMakeFiles/parameter_test.dir/parameter_test.cc.o.d"
  "parameter_test"
  "parameter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parameter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
