# Empty compiler generated dependencies file for ranking_loss_test.
# This may be replaced when dependencies are built.
