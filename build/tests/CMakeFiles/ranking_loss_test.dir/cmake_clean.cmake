file(REMOVE_RECURSE
  "CMakeFiles/ranking_loss_test.dir/ranking_loss_test.cc.o"
  "CMakeFiles/ranking_loss_test.dir/ranking_loss_test.cc.o.d"
  "ranking_loss_test"
  "ranking_loss_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranking_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
