file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_industrial.dir/bench_table3_industrial.cc.o"
  "CMakeFiles/bench_table3_industrial.dir/bench_table3_industrial.cc.o.d"
  "bench_table3_industrial"
  "bench_table3_industrial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_industrial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
