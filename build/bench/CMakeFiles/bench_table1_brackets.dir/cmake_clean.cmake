file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_brackets.dir/bench_table1_brackets.cc.o"
  "CMakeFiles/bench_table1_brackets.dir/bench_table1_brackets.cc.o.d"
  "bench_table1_brackets"
  "bench_table1_brackets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_brackets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
