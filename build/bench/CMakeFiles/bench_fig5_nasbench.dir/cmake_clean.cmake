file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_nasbench.dir/bench_fig5_nasbench.cc.o"
  "CMakeFiles/bench_fig5_nasbench.dir/bench_fig5_nasbench.cc.o.d"
  "bench_fig5_nasbench"
  "bench_fig5_nasbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_nasbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
