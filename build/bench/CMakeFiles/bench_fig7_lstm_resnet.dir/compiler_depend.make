# Empty compiler generated dependencies file for bench_fig7_lstm_resnet.
# This may be replaced when dependencies are built.
