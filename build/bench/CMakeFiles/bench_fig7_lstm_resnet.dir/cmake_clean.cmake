file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_lstm_resnet.dir/bench_fig7_lstm_resnet.cc.o"
  "CMakeFiles/bench_fig7_lstm_resnet.dir/bench_fig7_lstm_resnet.cc.o.d"
  "bench_fig7_lstm_resnet"
  "bench_fig7_lstm_resnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_lstm_resnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
