file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_test_perf.dir/bench_table2_test_perf.cc.o"
  "CMakeFiles/bench_table2_test_perf.dir/bench_table2_test_perf.cc.o.d"
  "bench_table2_test_perf"
  "bench_table2_test_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_test_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
