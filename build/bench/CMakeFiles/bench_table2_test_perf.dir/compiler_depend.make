# Empty compiler generated dependencies file for bench_table2_test_perf.
# This may be replaced when dependencies are built.
