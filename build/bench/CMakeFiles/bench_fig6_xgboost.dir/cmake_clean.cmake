file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_xgboost.dir/bench_fig6_xgboost.cc.o"
  "CMakeFiles/bench_fig6_xgboost.dir/bench_fig6_xgboost.cc.o.d"
  "bench_fig6_xgboost"
  "bench_fig6_xgboost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_xgboost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
