# Empty dependencies file for bench_fig6_xgboost.
# This may be replaced when dependencies are built.
