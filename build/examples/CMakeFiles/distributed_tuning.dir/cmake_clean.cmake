file(REMOVE_RECURSE
  "CMakeFiles/distributed_tuning.dir/distributed_tuning.cpp.o"
  "CMakeFiles/distributed_tuning.dir/distributed_tuning.cpp.o.d"
  "distributed_tuning"
  "distributed_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
