# Empty dependencies file for distributed_tuning.
# This may be replaced when dependencies are built.
