file(REMOVE_RECURSE
  "CMakeFiles/xgboost_tuning.dir/xgboost_tuning.cpp.o"
  "CMakeFiles/xgboost_tuning.dir/xgboost_tuning.cpp.o.d"
  "xgboost_tuning"
  "xgboost_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xgboost_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
