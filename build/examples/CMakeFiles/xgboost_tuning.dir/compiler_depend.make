# Empty compiler generated dependencies file for xgboost_tuning.
# This may be replaced when dependencies are built.
