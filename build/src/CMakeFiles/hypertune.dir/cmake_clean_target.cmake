file(REMOVE_RECURSE
  "libhypertune.a"
)
