
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/allocator/bracket_selector.cc" "src/CMakeFiles/hypertune.dir/allocator/bracket_selector.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/allocator/bracket_selector.cc.o.d"
  "/root/repo/src/allocator/fidelity_weights.cc" "src/CMakeFiles/hypertune.dir/allocator/fidelity_weights.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/allocator/fidelity_weights.cc.o.d"
  "/root/repo/src/allocator/ranking_loss.cc" "src/CMakeFiles/hypertune.dir/allocator/ranking_loss.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/allocator/ranking_loss.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/hypertune.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/hypertune.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/common/rng.cc.o.d"
  "/root/repo/src/common/statistics.cc" "src/CMakeFiles/hypertune.dir/common/statistics.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/common/statistics.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/hypertune.dir/common/status.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/hypertune.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/config/configuration.cc" "src/CMakeFiles/hypertune.dir/config/configuration.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/config/configuration.cc.o.d"
  "/root/repo/src/config/parameter.cc" "src/CMakeFiles/hypertune.dir/config/parameter.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/config/parameter.cc.o.d"
  "/root/repo/src/config/space.cc" "src/CMakeFiles/hypertune.dir/config/space.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/config/space.cc.o.d"
  "/root/repo/src/core/hyper_tune.cc" "src/CMakeFiles/hypertune.dir/core/hyper_tune.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/core/hyper_tune.cc.o.d"
  "/root/repo/src/core/tuner.cc" "src/CMakeFiles/hypertune.dir/core/tuner.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/core/tuner.cc.o.d"
  "/root/repo/src/core/tuner_factory.cc" "src/CMakeFiles/hypertune.dir/core/tuner_factory.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/core/tuner_factory.cc.o.d"
  "/root/repo/src/linalg/cholesky.cc" "src/CMakeFiles/hypertune.dir/linalg/cholesky.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/linalg/cholesky.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/hypertune.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/optimizer/bo_sampler.cc" "src/CMakeFiles/hypertune.dir/optimizer/bo_sampler.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/optimizer/bo_sampler.cc.o.d"
  "/root/repo/src/optimizer/kde_sampler.cc" "src/CMakeFiles/hypertune.dir/optimizer/kde_sampler.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/optimizer/kde_sampler.cc.o.d"
  "/root/repo/src/optimizer/median_imputation.cc" "src/CMakeFiles/hypertune.dir/optimizer/median_imputation.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/optimizer/median_imputation.cc.o.d"
  "/root/repo/src/optimizer/mfes_sampler.cc" "src/CMakeFiles/hypertune.dir/optimizer/mfes_sampler.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/optimizer/mfes_sampler.cc.o.d"
  "/root/repo/src/optimizer/random_sampler.cc" "src/CMakeFiles/hypertune.dir/optimizer/random_sampler.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/optimizer/random_sampler.cc.o.d"
  "/root/repo/src/optimizer/rea_sampler.cc" "src/CMakeFiles/hypertune.dir/optimizer/rea_sampler.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/optimizer/rea_sampler.cc.o.d"
  "/root/repo/src/problems/counting_ones.cc" "src/CMakeFiles/hypertune.dir/problems/counting_ones.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/problems/counting_ones.cc.o.d"
  "/root/repo/src/problems/curve_problems.cc" "src/CMakeFiles/hypertune.dir/problems/curve_problems.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/problems/curve_problems.cc.o.d"
  "/root/repo/src/problems/learning_curve.cc" "src/CMakeFiles/hypertune.dir/problems/learning_curve.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/problems/learning_curve.cc.o.d"
  "/root/repo/src/problems/nas_bench.cc" "src/CMakeFiles/hypertune.dir/problems/nas_bench.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/problems/nas_bench.cc.o.d"
  "/root/repo/src/problems/recsys.cc" "src/CMakeFiles/hypertune.dir/problems/recsys.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/problems/recsys.cc.o.d"
  "/root/repo/src/problems/xgboost_surface.cc" "src/CMakeFiles/hypertune.dir/problems/xgboost_surface.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/problems/xgboost_surface.cc.o.d"
  "/root/repo/src/report/run_report.cc" "src/CMakeFiles/hypertune.dir/report/run_report.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/report/run_report.cc.o.d"
  "/root/repo/src/runtime/measurement_store.cc" "src/CMakeFiles/hypertune.dir/runtime/measurement_store.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/runtime/measurement_store.cc.o.d"
  "/root/repo/src/runtime/simulated_cluster.cc" "src/CMakeFiles/hypertune.dir/runtime/simulated_cluster.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/runtime/simulated_cluster.cc.o.d"
  "/root/repo/src/runtime/store_io.cc" "src/CMakeFiles/hypertune.dir/runtime/store_io.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/runtime/store_io.cc.o.d"
  "/root/repo/src/runtime/thread_cluster.cc" "src/CMakeFiles/hypertune.dir/runtime/thread_cluster.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/runtime/thread_cluster.cc.o.d"
  "/root/repo/src/runtime/trial_history.cc" "src/CMakeFiles/hypertune.dir/runtime/trial_history.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/runtime/trial_history.cc.o.d"
  "/root/repo/src/scheduler/async_bracket_scheduler.cc" "src/CMakeFiles/hypertune.dir/scheduler/async_bracket_scheduler.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/scheduler/async_bracket_scheduler.cc.o.d"
  "/root/repo/src/scheduler/batch_bo_scheduler.cc" "src/CMakeFiles/hypertune.dir/scheduler/batch_bo_scheduler.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/scheduler/batch_bo_scheduler.cc.o.d"
  "/root/repo/src/scheduler/bracket.cc" "src/CMakeFiles/hypertune.dir/scheduler/bracket.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/scheduler/bracket.cc.o.d"
  "/root/repo/src/scheduler/sync_bracket_scheduler.cc" "src/CMakeFiles/hypertune.dir/scheduler/sync_bracket_scheduler.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/scheduler/sync_bracket_scheduler.cc.o.d"
  "/root/repo/src/surrogate/acquisition.cc" "src/CMakeFiles/hypertune.dir/surrogate/acquisition.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/surrogate/acquisition.cc.o.d"
  "/root/repo/src/surrogate/gaussian_process.cc" "src/CMakeFiles/hypertune.dir/surrogate/gaussian_process.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/surrogate/gaussian_process.cc.o.d"
  "/root/repo/src/surrogate/kernel.cc" "src/CMakeFiles/hypertune.dir/surrogate/kernel.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/surrogate/kernel.cc.o.d"
  "/root/repo/src/surrogate/mfes_ensemble.cc" "src/CMakeFiles/hypertune.dir/surrogate/mfes_ensemble.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/surrogate/mfes_ensemble.cc.o.d"
  "/root/repo/src/surrogate/random_forest.cc" "src/CMakeFiles/hypertune.dir/surrogate/random_forest.cc.o" "gcc" "src/CMakeFiles/hypertune.dir/surrogate/random_forest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
