# Empty dependencies file for hypertune.
# This may be replaced when dependencies are built.
