// Architecture search on the synthetic NAS-Bench-201 benchmark: compares
// asynchronous baselines against Hyper-Tune on the same budget and prints
// the best cell found by each method.
//
//   ./build/examples/nas_search [budget_hours=12] [workers=8]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>

#include "src/core/tuner_factory.h"
#include "src/problems/nas_bench.h"

int main(int argc, char** argv) {
  using namespace hypertune;
  double budget_hours = argc > 1 ? std::atof(argv[1]) : 12.0;
  int workers = argc > 2 ? std::atoi(argv[2]) : 8;

  SyntheticNasBench problem(
      NasBenchOptions{NasDataset::kCifar100, /*table_seed=*/2022});
  std::printf("task: %s | %zu-dim space, %llu architectures, optimum %.3f%%\n",
              problem.name().c_str(), problem.space().size(),
              static_cast<unsigned long long>(problem.space().Cardinality()),
              problem.optimum());
  std::printf("budget: %.1f h on %d workers (simulated)\n\n", budget_hours,
              workers);

  std::printf("%-14s %10s %10s %8s %7s\n", "method", "val err %", "test err %",
              "trials", "util");
  for (Method method : {Method::kARandom, Method::kAsha, Method::kAHyperband,
                        Method::kABohb, Method::kARea, Method::kHyperTune}) {
    TunerFactoryOptions factory;
    factory.method = method;
    factory.seed = 7;
    factory.batch_size = workers;
    std::unique_ptr<Tuner> tuner = CreateTuner(problem, factory);

    ClusterOptions cluster;
    cluster.num_workers = workers;
    cluster.time_budget_seconds = budget_hours * 3600.0;
    cluster.seed = 7;
    RunResult run = tuner->Run(problem, cluster);

    const std::optional<TrialRecord> best = BestTrial(run);
    std::printf("%-14s %10.3f %10.3f %8zu %6.0f%%\n", MethodName(method),
                run.history.best_objective(),
                best.has_value() ? best->result.test_objective : 0.0,
                run.history.num_trials(), 100.0 * run.utilization);
    if (method == Method::kHyperTune && best.has_value()) {
      std::printf("\nHyper-Tune's best cell (%.0f epochs):\n  %s\n",
                  best->job.resource,
                  problem.space().Format(best->job.config).c_str());
      std::printf("  true final validation error: %.3f%%\n",
                  problem.FinalValidationError(best->job.config));
    }
  }
  return 0;
}
