// Tuning XGBoost on a large tabular dataset with subset-fraction partial
// evaluations — the paper's §5.3 scenario — through the HyperTune facade.
// Demonstrates the component toggles (ablations) on the same task.
//
//   ./build/examples/xgboost_tuning [budget_hours=3] [workers=8]

#include <cstdio>
#include <cstdlib>

#include "src/core/hyper_tune.h"
#include "src/problems/xgboost_surface.h"

int main(int argc, char** argv) {
  using namespace hypertune;
  double budget_hours = argc > 1 ? std::atof(argv[1]) : 3.0;
  int workers = argc > 2 ? std::atoi(argv[2]) : 8;

  SyntheticXgboost problem(XgbOptions{XgbDataset::kCovertype, 2022});
  Configuration manual = problem.ManualConfiguration();
  EvalOutcome manual_outcome =
      problem.Evaluate(manual, problem.max_resource(), /*noise_seed=*/1);

  std::printf("task: %s (9 hyper-parameters, subset fidelity 1/27..1)\n",
              problem.name().c_str());
  std::printf("manual baseline: %.2f%% accuracy\n",
              100.0 - manual_outcome.objective);
  std::printf("budget: %.1f h on %d workers (simulated)\n\n", budget_hours,
              workers);

  struct Variant {
    const char* label;
    bool bs, dasha, mfes;
  };
  const Variant variants[] = {
      {"Hyper-Tune (full)", true, true, true},
      {"  w/o bracket selection", false, true, true},
      {"  w/o D-ASHA", true, false, true},
      {"  w/o MFES sampler", true, true, false},
  };

  for (const Variant& v : variants) {
    HyperTuneOptions options;
    options.num_workers = workers;
    options.time_budget_seconds = budget_hours * 3600.0;
    options.bracket_selection = v.bs;
    options.delayed_promotion = v.dasha;
    options.multi_fidelity_sampler = v.mfes;
    options.seed = 11;
    TuningOutcome outcome = HyperTune::Optimize(problem, options);
    std::printf("%-26s accuracy %.2f%%  (+%.2f vs manual, %zu trials)\n",
                v.label, 100.0 - outcome.best_objective,
                manual_outcome.objective - outcome.best_objective,
                outcome.run.history.num_trials());
  }

  // Show the tuned configuration of the full framework.
  HyperTuneOptions options;
  options.num_workers = workers;
  options.time_budget_seconds = budget_hours * 3600.0;
  options.seed = 11;
  TuningOutcome outcome = HyperTune::Optimize(problem, options);
  std::printf("\nbest configuration found:\n  %s\n",
              problem.space().Format(outcome.best_config).c_str());
  std::printf("evaluated with subset fraction %.3f; validation %.3f%% err\n",
              outcome.best_resource, outcome.best_objective);
  return 0;
}
