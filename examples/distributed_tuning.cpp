// Real-concurrency demonstration: the exact same scheduler/optimizer stack
// that runs on the virtual-time simulator here drives a pool of OS worker
// threads (ThreadCluster). Evaluation costs from the problem's cost model
// are turned into real sleeps, so asynchronous scheduling visibly
// out-utilizes the synchronous baseline on wall-clock time.
//
//   ./build/examples/distributed_tuning [wall_seconds=4] [workers=8]

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "src/core/tuner_factory.h"
#include "src/problems/counting_ones.h"

namespace {

void RunBackend(const char* label, hypertune::Method method,
                const hypertune::TuningProblem& problem, double wall_seconds,
                int workers) {
  using namespace hypertune;
  TunerFactoryOptions factory;
  factory.method = method;
  factory.seed = 5;
  factory.batch_size = workers;
  std::unique_ptr<Tuner> tuner = CreateTuner(problem, factory);

  ThreadClusterOptions cluster;
  cluster.num_workers = workers;
  cluster.time_budget_seconds = wall_seconds;
  cluster.seed = 5;
  // 1 simulated second -> 1 ms of real sleep, so evaluations take real time
  // and stragglers/barriers manifest on the wall clock.
  cluster.cost_sleep_scale = 1e-3;
  RunResult run = tuner->RunOnThreads(problem, cluster);

  std::map<int, int> per_worker;
  for (const TrialRecord& trial : run.history.trials()) {
    ++per_worker[trial.worker];
  }
  std::printf("%-12s best=%.4f trials=%zu utilization=%.0f%% per-worker:",
              label, run.history.best_objective(), run.history.num_trials(),
              100.0 * run.utilization);
  for (const auto& [worker, count] : per_worker) {
    std::printf(" w%d:%d", worker, count);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hypertune;
  double wall_seconds = argc > 1 ? std::atof(argv[1]) : 4.0;
  int workers = argc > 2 ? std::atoi(argv[2]) : 8;

  CountingOnesOptions options;
  options.num_categorical = 8;
  options.num_continuous = 8;
  options.max_samples = 729.0;
  CountingOnes problem(options);

  std::printf("counting-ones on %d REAL worker threads, %.1f s wall budget\n"
              "(optimum -1.0; evaluation sleeps = simulated cost x 1ms)\n\n",
              workers, wall_seconds);
  RunBackend("Hyperband", Method::kHyperband, problem, wall_seconds, workers);
  RunBackend("ASHA", Method::kAsha, problem, wall_seconds, workers);
  RunBackend("Hyper-Tune", Method::kHyperTune, problem, wall_seconds, workers);
  std::printf("\nNote the utilization gap: the synchronous method idles at "
              "rung barriers,\nthe asynchronous ones keep every thread "
              "busy (Figure 1 / Figure 4 of the paper).\n");
  return 0;
}
