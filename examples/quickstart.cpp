// Quickstart: tune the counting-ones benchmark with the full Hyper-Tune
// framework on the virtual-time cluster simulator, then print the anytime
// curve and the best configuration found.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "src/core/hyper_tune.h"
#include "src/problems/counting_ones.h"
#include "src/report/run_report.h"

int main() {
  using namespace hypertune;

  // 1. Define the tuning task: 8 categorical + 8 continuous dimensions,
  //    fidelity = number of Monte-Carlo samples (1 .. 729).
  CountingOnesOptions problem_options;
  problem_options.num_categorical = 8;
  problem_options.num_continuous = 8;
  CountingOnes problem(problem_options);

  // 2. Configure the framework: 16 simulated workers, 1 virtual hour.
  //    Observability is opt-in: hand the run a sink and every job launch,
  //    completion, promotion, and surrogate fit is recorded (without
  //    perturbing the run — instrumented runs are bit-identical).
  Observability obs;
  HyperTuneOptions options;
  options.num_workers = 16;
  options.time_budget_seconds = 3600.0;
  options.seed = 42;
  options.obs.sink = &obs;

  // 3. Optimize.
  TuningOutcome outcome = HyperTune::Optimize(problem, options);

  // 4. Report.
  std::printf("counting-ones, %d workers, %.0f s virtual budget\n",
              options.num_workers, options.time_budget_seconds);
  std::printf("trials completed : %zu\n", outcome.run.history.num_trials());
  std::printf("worker utilization: %.1f%%\n",
              100.0 * outcome.run.utilization);
  std::printf("best objective    : %.4f (optimum -1.0)\n",
              outcome.best_objective);
  std::printf("noiseless value   : %.4f\n", outcome.test_objective);
  std::printf("best configuration: %s\n",
              problem.space().Format(outcome.best_config).c_str());

  std::printf("\nanytime curve (virtual time -> best objective):\n");
  const auto& curve = outcome.run.history.curve();
  size_t stride = curve.size() / 10 + 1;
  for (size_t i = 0; i < curve.size(); i += stride) {
    std::printf("  t=%8.1f  best=%.4f\n", curve[i].time,
                curve[i].best_objective);
  }

  // 5. Structured reporting: per-level trial counts and CSV artifacts.
  RunSummary summary = Summarize(outcome.run, /*num_levels=*/4);
  std::printf("\n%s\n", FormatSummary(summary).c_str());
  Status saved =
      SaveRunArtifacts(outcome.run, problem.space(), "/tmp/quickstart");
  if (saved.ok()) {
    std::printf("trial log written to /tmp/quickstart_trials.csv\n");
  }

  // 6. Observability artifacts: the run's metrics section, a Chrome trace
  //    (open /tmp/quickstart_trace.json in about:tracing or
  //    https://ui.perfetto.dev), and the per-worker utilization timeline.
  std::printf("\n%s\n", FormatMetrics(obs.metrics.Snapshot()).c_str());
  Status obs_saved = SaveObservabilityArtifacts(obs, "/tmp/quickstart");
  if (!obs_saved.ok()) {
    std::printf("observability export failed: %s\n",
                obs_saved.message().c_str());
    return 1;
  }
  std::printf("chrome trace written to /tmp/quickstart_trace.json\n");
  std::printf("worker timeline written to /tmp/quickstart_timeline.csv\n");
  return 0;
}
